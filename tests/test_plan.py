"""Tests for compiled rule plans and the shared EvalContext.

Covers the compile/execute split (repro.engine.plan), plan caching in
EvalContext (each rule compiled at most once per (rule, delta
occurrence, planner policy) per evaluation), and the chained
copy-on-write bindings the executor yields.
"""

from repro.engine.binding import EMPTY_BINDING, ChainBinding, as_chain, extended
from repro.engine.context import EvalContext, ensure_context
from repro.engine.database import Database
from repro.engine.plan import (
    apply_rule_plan,
    compile_body,
    compile_rule,
    run_plan,
)
from repro.engine.solve import order_body
from repro.observe import MetricsCollector, TraceRecorder
from repro.parser import parse_atom, parse_rule

from tests.helpers import run


def db_of(*atom_srcs):
    return Database(parse_atom(src) for src in atom_srcs)


class TestCompile:
    def test_plan_order_matches_order_body(self):
        rule = parse_rule("p(X) <- ~r(X), q(X).")
        plan = compile_rule(rule)
        assert plan.order == order_body(rule.body)

    def test_first_occurrence_leads(self):
        rule = parse_rule("t(X, Y) <- e(X, Z), t(Z, Y).")
        plan = compile_rule(rule, first=1)
        assert plan.order[0] == 1
        assert plan.first == 1

    def test_probe_positions_use_bound_vars(self):
        rule = parse_rule("t(X, Y) <- e(X, Z), t(Z, Y).")
        plan = compile_rule(rule)
        # after e(X, Z) binds both vars, t(Z, _) probes position 0
        recursive_step = plan.steps[1]
        assert recursive_step.probe_positions == (0,)

    def test_fully_bound_membership_step(self):
        rule = parse_rule("p(X) <- q(X), r(X).")
        plan = compile_rule(rule)
        assert plan.steps[1].fully_bound

    def test_constant_probe(self):
        rule = parse_rule("p(X) <- e(a, X).")
        plan = compile_rule(rule)
        assert plan.steps[0].probe_positions == (0,)

    def test_grouping_rule_has_no_head_template(self):
        rule = parse_rule("p(X, <Y>) <- e(X, Y).")
        plan = compile_rule(rule)
        assert plan.head is None


class TestRunPlan:
    def test_join_results(self):
        rule = parse_rule("t(X, Y) <- e(X, Z), e(Z, Y).")
        db = db_of("e(1, 2)", "e(2, 3)", "e(2, 4)")
        facts = set(apply_rule_plan(db, compile_rule(rule)))
        assert facts == {parse_atom("t(1, 3)"), parse_atom("t(1, 4)")}

    def test_overrides_restrict_one_occurrence(self):
        rule = parse_rule("t(X, Y) <- e(X, Z), t(Z, Y).")
        db = db_of("e(1, 2)", "e(2, 3)", "t(2, 9)", "t(3, 9)")
        plan = compile_rule(rule, first=1)
        # delta contains only t(3, 9): joins must go through it
        facts = set(
            apply_rule_plan(db, plan, overrides={1: [parse_atom("t(3, 9)").args]})
        )
        assert facts == {parse_atom("t(2, 9)")}

    def test_negation_uses_negation_db(self):
        rule = parse_rule("p(X) <- q(X), ~r(X).")
        db = db_of("q(1)", "q(2)", "r(1)")
        other = db_of("r(2)")
        # negation consulted against `other`, not the probe db
        facts = set(apply_rule_plan(db, compile_rule(rule), negation_db=other))
        assert facts == {parse_atom("p(1)")}

    def test_run_plan_yields_mappings(self):
        plan = compile_body(parse_rule("p(X) <- e(X, Y).").body)
        db = db_of("e(1, 2)")
        (binding,) = list(run_plan(db, plan))
        assert dict(binding) == {
            "X": parse_atom("e(1, 2)").args[0],
            "Y": parse_atom("e(1, 2)").args[1],
        }

    def test_builtins_in_plan(self):
        rule = parse_rule("p(Y) <- e(X, _), Y = X + 1, Y < 4.")
        db = db_of("e(1, 9)", "e(2, 9)", "e(3, 9)")
        facts = set(apply_rule_plan(db, compile_rule(rule)))
        assert facts == {parse_atom("p(2)"), parse_atom("p(3)")}


class TestChainBinding:
    def test_bind_does_not_mutate_parent(self):
        base = as_chain({"X": 1})
        child = base.bind("Y", 2)
        assert "Y" not in base
        assert dict(child) == {"X": 1, "Y": 2}

    def test_materialize_roundtrip(self):
        chain = EMPTY_BINDING.bind("A", 1).bind("B", 2)
        assert chain.materialize() == {"A": 1, "B": 2}
        assert len(chain) == 2

    def test_as_chain_passthrough(self):
        chain = EMPTY_BINDING.bind("A", 1)
        assert as_chain(chain) is chain
        assert as_chain(None) is EMPTY_BINDING

    def test_extended_copies_dicts(self):
        original = {"X": 1}
        copy = extended(original)
        copy["Y"] = 2
        assert original == {"X": 1}

    def test_extended_keeps_chains(self):
        chain = EMPTY_BINDING.bind("X", 1)
        assert extended(chain) is chain

    def test_equality_with_dict(self):
        chain = EMPTY_BINDING.bind("X", 1)
        assert chain == {"X": 1}
        assert isinstance(chain, ChainBinding)


class TestEvalContext:
    def test_plan_for_caches(self):
        rule = parse_rule("p(X) <- q(X).")
        ctx = EvalContext(Database())
        first = ctx.plan_for(rule)
        assert ctx.plan_for(rule) is first
        assert ctx.plans_cached == 1

    def test_distinct_keys_per_occurrence(self):
        rule = parse_rule("t(X, Y) <- e(X, Z), t(Z, Y).")
        ctx = EvalContext(Database())
        assert ctx.plan_for(rule) is not ctx.plan_for(rule, first=1)
        assert ctx.plans_cached == 2

    def test_static_planner_survives_db_growth(self):
        db = db_of("e(1, 2)")
        ctx = EvalContext(db)
        rule = parse_rule("p(X) <- e(X, Y).")
        plan = ctx.plan_for(rule)
        db.add(parse_atom("e(3, 4)"))
        ctx.refresh_sizes()  # no-op under the static policy
        assert ctx.plan_for(rule) is plan

    def test_sized_planner_invalidates_on_growth(self):
        db = db_of("e(1, 2)")
        ctx = EvalContext(db, planner="sized")
        ctx.refresh_sizes()
        rule = parse_rule("p(X) <- e(X, Y).")
        plan = ctx.plan_for(rule)
        db.add(parse_atom("e(3, 4)"))
        ctx.refresh_sizes()
        assert ctx.plans_cached == 0
        assert ctx.plan_for(rule) is not plan

    def test_ensure_context_passthrough(self):
        ctx = EvalContext(Database())
        assert ensure_context(ctx, Database()) is ctx
        fresh = ensure_context(None, Database(), planner="sized")
        assert fresh.planner == "sized"


TC = """
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
"""


def chain(n):
    return "".join(f"e({i}, {i + 1}). " for i in range(n))


class TestPlanOnce:
    """Each (rule, delta occurrence) is compiled at most once per run."""

    def test_seminaive_plan_count_independent_of_iterations(self):
        counts = {}
        for n in (4, 24):
            recorder = TraceRecorder()
            run(chain(n) + TC, strategy="seminaive", hooks=recorder)
            counts[n] = recorder.plans_built
        # a 6x longer chain means many more fixpoint rounds but the
        # same plans: both rules once for round 0, plus the recursive
        # rule's single delta occurrence of t.
        assert counts[4] == counts[24] == 3

    def test_naive_plan_count_is_rule_count(self):
        recorder = TraceRecorder()
        result = run(chain(12) + TC, strategy="naive", hooks=recorder)
        assert recorder.plans_built == 2
        assert result.total_iterations > 2

    def test_cache_hits_recorded(self):
        metrics = MetricsCollector()
        run(chain(12) + TC, strategy="seminaive", metrics=metrics)
        assert metrics.counters["plans_built"] == 3
        assert metrics.counters["plan_cache_hits"] > 0

    def test_sized_planner_same_model(self):
        static = run(chain(8) + TC, planner="static")
        sized = run(chain(8) + TC, planner="sized")
        assert static.database == sized.database
