"""Tests for dependency analysis and layering (paper §3.1)."""

import pytest

from repro.errors import NotAdmissibleError
from repro.parser import parse_rules
from repro.program.dependency import (
    dependency_graph,
    depends_on,
    is_admissible,
    strict_cycle,
)
from repro.program.stratify import (
    Layering,
    linear_layerings,
    stratify,
    validate_layering,
)


class TestDependencyGraph:
    def test_positive_body_gives_ge_edge(self):
        program = parse_rules("p(X) <- q(X).")
        graph = dependency_graph(program)
        assert graph.has_edge("p", "q")
        assert not graph["p"]["q"]["strict"]

    def test_negation_gives_strict_edge(self):
        program = parse_rules("p(X) <- q(X), ~r(X).")
        graph = dependency_graph(program)
        assert graph["p"]["r"]["strict"]
        assert not graph["p"]["q"]["strict"]

    def test_grouping_head_makes_all_edges_strict(self):
        program = parse_rules("p(X, <Y>) <- q(X, Y), r(X).")
        graph = dependency_graph(program)
        assert graph["p"]["q"]["strict"]
        assert graph["p"]["r"]["strict"]

    def test_builtins_excluded(self):
        program = parse_rules("p(X) <- q(X), member(X, {1}).")
        graph = dependency_graph(program)
        assert "member" not in graph

    def test_strict_wins_on_collapsed_edges(self):
        program = parse_rules("p(X) <- q(X). p(X) <- r(X), ~q(X).")
        graph = dependency_graph(program)
        assert graph["p"]["q"]["strict"]

    def test_depends_on_transitive(self):
        program = parse_rules("a(X) <- b(X). b(X) <- c(X). c(1).")
        assert depends_on(program, "a") == {"b", "c"}


class TestAdmissibility:
    def test_recursion_without_negation_admissible(self):
        program = parse_rules(
            "anc(X, Y) <- par(X, Y). anc(X, Y) <- par(X, Z), anc(Z, Y)."
        )
        assert is_admissible(program)

    def test_paper_even_program_inadmissible(self):
        # even must lie strictly below itself: impossible (paper §1).
        program = parse_rules(
            """
            int(0).
            int(s(X)) <- int(X).
            even(0).
            even(s(X)) <- int(X), ~even(X).
            """
        )
        assert not is_admissible(program)
        cycle = strict_cycle(dependency_graph(program))
        assert cycle == ("even",)

    def test_grouping_self_recursion_inadmissible(self):
        # the paper's Russell-style program p(<X>) <- p(X).
        program = parse_rules("p(<X>) <- p(X).")
        assert not is_admissible(program)

    def test_mutual_negation_inadmissible(self):
        program = parse_rules("p(X) <- b(X), ~q(X). q(X) <- b(X), ~p(X).")
        assert not is_admissible(program)

    def test_negation_of_lower_predicate_admissible(self):
        program = parse_rules(
            """
            anc(X, Y) <- par(X, Y).
            anc(X, Y) <- par(X, Z), anc(Z, Y).
            excl(X, Y, Z) <- anc(X, Y), person(Z), ~anc(X, Z).
            """
        )
        assert is_admissible(program)


class TestStratify:
    def test_two_layer_paper_example(self):
        program = parse_rules(
            """
            ancestor(X, Y) <- parent(X, Y).
            ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
            excl(X, Y, Z) <- ancestor(X, Y), person(Z), ~ancestor(X, Z).
            """
        )
        layering = stratify(program)
        assert layering.index("parent") == 0
        assert layering.index("ancestor") == 0
        assert layering.index("excl") == 1

    def test_grouping_forces_new_layer(self):
        program = parse_rules("part(P, <S>) <- p(P, S).")
        layering = stratify(program)
        assert layering.index("part") == layering.index("p") + 1

    def test_chained_strict_layers(self):
        program = parse_rules(
            """
            g1(X, <Y>) <- base(X, Y).
            g2(X, <Y>) <- g1(X, Y).
            top(X) <- g2(X, S), ~g1(X, S).
            """
        )
        layering = stratify(program)
        assert layering.index("base") == 0
        assert layering.index("g1") == 1
        assert layering.index("g2") == 2
        # top >= g2 and top > g1: the least consistent layer is 2,
        # sharing a layer with g2.
        assert layering.index("top") == 2

    def test_inadmissible_raises(self):
        program = parse_rules("p(<X>) <- p(X).")
        with pytest.raises(NotAdmissibleError):
            stratify(program)

    def test_rules_in_layer(self):
        program = parse_rules("p(1). q(X) <- p(X), ~r(X). r(2).")
        layering = stratify(program)
        heads = {
            r.head.pred
            for r in layering.rules_in_layer(program, layering.index("q"))
        }
        assert "q" in heads

    def test_canonical_layering_validates(self):
        program = parse_rules(
            "a(X) <- b(X). b(X) <- c(X), ~d(X). c(1). d(2)."
        )
        assert validate_layering(program, stratify(program))

    def test_invalid_layering_detected(self):
        program = parse_rules("p(X) <- q(X), ~r(X). q(1). r(1).")
        bad = Layering([frozenset({"p"}), frozenset({"q", "r"})])
        assert not validate_layering(program, bad)

    def test_predicate_in_two_layers_rejected(self):
        with pytest.raises(ValueError):
            Layering([frozenset({"p"}), frozenset({"p"})])


class TestAlternativeLayerings:
    def test_linear_layerings_all_valid(self):
        program = parse_rules(
            """
            anc(X, Y) <- par(X, Y).
            anc(X, Y) <- par(X, Z), anc(Z, Y).
            lonely(X) <- person(X), ~anc(X, X).
            grouped(X, <Y>) <- anc(X, Y).
            """
        )
        layerings = linear_layerings(program, limit=6)
        assert layerings
        for layering in layerings:
            assert validate_layering(program, layering)

    def test_multiple_distinct_layerings_exist(self):
        # Two independent strata can be linearized in either order.
        program = parse_rules(
            "a(X) <- b(X), ~c(X). d(X) <- e(X), ~f(X). b(1). c(1). e(1). f(1)."
        )
        layerings = linear_layerings(program, limit=10)
        assert len(layerings) > 1
