"""Executable versions of every worked example in the paper (E12).

Each test quotes the section it reproduces and checks the exact claims
made there: which interpretations are models, which programs have no
model, which models are minimal, and what the bottom-up evaluator
derives.
"""

import pytest

from repro.engine import evaluate
from repro.parser import parse_atom, parse_rules
from repro.program.dependency import is_admissible
from repro.semantics import (
    all_models,
    has_model,
    improves_on,
    is_minimal_model_among,
    is_model,
    minimal_models_over,
)
from tests.helpers import facts_of, run


def atoms(*sources):
    return frozenset(parse_atom(s) for s in sources)


class TestSection1Intro:
    def test_ancestor_simple_program(self):
        result = run(
            """
            parent(a, b). parent(b, c).
            ancestor(X, Y) <- ancestor(X, Z), parent(Z, Y).
            ancestor(X, Y) <- parent(X, Y).
            """
        )
        assert facts_of(result, "ancestor") == {
            "ancestor(a, b)",
            "ancestor(a, c)",
            "ancestor(b, c)",
        }

    def test_even_program_inadmissible(self):
        program = parse_rules(
            """
            int(0).
            int(s(X)) <- int(X).
            even(0).
            even(s(X)) <- int(X), ~even(X).
            """
        )
        assert not is_admissible(program)

    def test_book_deal_bounded_cardinality(self):
        result = run(
            """
            book(t1, 20). book(t2, 30). book(t3, 40). book(t4, 200).
            book_deal({X, Y, Z}) <- book(X, Px), book(Y, Py), book(Z, Pz),
                                    Px + Py + Pz < 100.
            """
        )
        deals = facts_of(result, "book_deal")
        # "book_deal may yield singleton and doublet sets"
        assert "book_deal({t1})" in deals
        assert "book_deal({t1, t2})" in deals
        assert "book_deal({t1, t2, t3})" in deals
        # nothing involving the 200-dollar book
        assert not any("t4" in d for d in deals)

    def test_supplier_grouping(self):
        result = run(
            """
            supplies(s1, p1). supplies(s1, p2). supplies(s2, p1).
            supplier_parts(S, <P>) <- supplies(S, P).
            """
        )
        assert facts_of(result, "supplier_parts") == {
            "supplier_parts(s1, {p1, p2})",
            "supplier_parts(s2, {p1})",
        }

    def test_parts_explosion_full(self):
        # Section 1's flagship example, exact claimed tuples.
        result = run(
            """
            p(1,2). p(1,7). p(2,3). p(2,4). p(3,5). p(3,6).
            q(4,20). q(5,10). q(6,15). q(7,200).
            part(P, <S>) <- p(P, S).
            tc({X}, C) <- q(X, C).
            tc({X}, C) <- part(X, S), tc(S, C).
            tc(S, C) <- partition(S, S1, S2), S1 != {}, S2 != {},
                        tc(S1, C1), tc(S2, C2), C = C1 + C2.
            result(X, C) <- tc({X}, C).
            """
        )
        # "the part relation would contain part(1,{2,7}), ..."
        assert facts_of(result, "part") == {
            "part(1, {2, 7})",
            "part(2, {3, 4})",
            "part(3, {5, 6})",
        }
        # "the second tc rule would contribute tc({3},25), tc({2},45), tc({1},245)"
        tc = facts_of(result, "tc")
        assert {"tc({3}, 25)", "tc({2}, 45)", "tc({1}, 245)"} <= tc


class TestSection22ModelExample:
    PROGRAM = """
    q(X) <- p(X), h(X).
    p(<X>) <- r(X).
    r(1).
    h({1}).
    """

    def test_claimed_model_is_model(self):
        program = parse_rules(self.PROGRAM)
        model = atoms("r(1)", "h({1})", "p({1})", "q({1})")
        assert is_model(program, model)

    def test_claimed_non_model_is_not(self):
        program = parse_rules(self.PROGRAM)
        not_model = atoms("r(1)", "h({1})", "p({1, 2})")
        assert not is_model(program, not_model)

    def test_bottom_up_computes_the_model(self):
        result = run(self.PROGRAM)
        assert result.database.as_set() == atoms(
            "r(1)", "h({1})", "p({1})", "q({1})"
        )


class TestSection23Intersection:
    def test_intersection_of_models_not_a_model(self):
        program = parse_rules("p(<X>) <- q(X).")
        a = atoms("q(1)", "q(2)", "p({1, 2})")
        b = atoms("q(2)", "q(3)", "p({2, 3})")
        assert is_model(program, a)
        assert is_model(program, b)
        assert not is_model(program, a & b)  # missing p({2})


class TestSection23NoModel:
    PROGRAM = "p(<X>) <- p(X). p(1)."

    def test_inadmissible(self):
        assert not is_admissible(parse_rules(self.PROGRAM))

    def test_no_model_over_candidate_universe(self):
        # Russell-Whitehead flavor: every candidate interpretation that
        # contains p(1) needs p of the set of its own p-values, which the
        # grouping then enlarges — no subset of this pool is a model.
        program = parse_rules(self.PROGRAM)
        candidates = [
            parse_atom(src)
            for src in (
                "p({1})",
                "p({{1}})",
                "p({1, {1}})",
                "p({1, {1}, {1, {1}}})",
                "p({{1}, {1, {1}}})",
                "p({1, {1, {1}}})",
                "p({{1, {1}}})",
            )
        ]
        assert not has_model(program, candidates)


class TestSection23MultipleMinimalModels:
    PROGRAM = """
    p(<X>) <- q(X).
    q(Y) <- w(S, Y), p(S).
    q(1).
    w({1}, 7).
    """

    CANDIDATES = (
        "q(2)", "q(3)", "q(7)",
        "p({1})", "p({1, 2})", "p({1, 3})", "p({1, 7})",
        "p({1, 2, 7})", "p({2})",
    )

    def _program(self):
        return parse_rules(self.PROGRAM)

    def test_m_is_not_a_model(self):
        assert not is_model(self._program(), atoms("q(1)", "w({1}, 7)"))

    def test_m_plus_p7_still_not_a_model(self):
        assert not is_model(
            self._program(), atoms("q(1)", "w({1}, 7)", "p({7})")
        )

    def test_m1_and_m2_are_models(self):
        m1 = atoms("q(1)", "w({1}, 7)", "q(2)", "p({1, 2})")
        m2 = atoms("q(1)", "w({1}, 7)", "q(3)", "p({1, 3})")
        assert is_model(self._program(), m1)
        assert is_model(self._program(), m2)

    def test_both_minimal_no_unique_minimum(self):
        program = self._program()
        candidates = [parse_atom(s) for s in self.CANDIDATES]
        m1 = atoms("q(1)", "w({1}, 7)", "q(2)", "p({1, 2})")
        m2 = atoms("q(1)", "w({1}, 7)", "q(3)", "p({1, 3})")
        pool = all_models(program, candidates)
        assert is_minimal_model_among(program, m1, pool)
        assert is_minimal_model_among(program, m2, pool)
        minimal = minimal_models_over(program, candidates)
        assert len(minimal) > 1  # no unique minimal model


class TestSection24MinimalityExample:
    PROGRAM = """
    q(1).
    p(<X>) <- q(X).
    q(2) <- p({1, 2}).
    """

    def test_m1_model_but_not_minimal(self):
        program = parse_rules(self.PROGRAM)
        m1 = atoms("q(1)", "q(2)", "p({1, 2})")
        m2 = atoms("q(1)", "p({1})")
        assert is_model(program, m1)
        assert is_model(program, m2)
        # M2 - M1 = {p({1})} <= {q(2), p({1,2})} = M1 - M2
        assert improves_on(m2, m1)
        assert not improves_on(m1, m2)

    def test_m2_is_minimal_over_pool(self):
        program = parse_rules(self.PROGRAM)
        candidates = [
            parse_atom(s)
            for s in ("q(2)", "p({1})", "p({1, 2})", "p({2})", "p({})")
        ]
        m2 = atoms("q(1)", "p({1})")
        assert is_minimal_model_among(
            program, m2, all_models(program, candidates)
        )

    def test_program_is_not_admissible(self):
        # p > q (grouping) and q >= p (rule 3) form a strict cycle, so
        # Theorem 1 does not apply and the evaluator must refuse.
        from repro.errors import NotAdmissibleError

        program = parse_rules(self.PROGRAM)
        assert not is_admissible(program)
        with pytest.raises(NotAdmissibleError):
            evaluate(program)


class TestSection6RunningExample:
    """The `young` program (rules 1-5) evaluated bottom-up.

    The paper's rule 5 (``young(X, <Y>) <- ~a(X, Z), sg(X, Y)``) has an
    unconstrained Z; we use the safe formulation via ``has_desc`` ("X
    has no descendants, i.e. is not anyone's ancestor"), which is the
    reading the paper states in words.
    """

    SRC = """
    p(adam, john). p(adam, mary).
    p(eve, john). p(eve, mary).
    p(john, bob).
    siblings(john, mary). siblings(mary, john).
    a(X, Y) <- p(X, Y).
    a(X, Y) <- a(X, Z), a(Z, Y).
    sg(X, Y) <- siblings(X, Y).
    sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
    has_desc(X) <- a(X, _).
    young(X, <Y>) <- sg(X, Y), ~has_desc(X).
    """

    def test_young_semantics(self):
        result = run(self.SRC)
        young = facts_of(result, "young")
        # mary has no descendants and shares a generation with john.
        assert "young(mary, {john})" in young
        # john has a descendant (bob) => not young.
        assert not any(fact.startswith("young(john,") for fact in young)
        # bob has no same-generation partner => grouped set empty =>
        # the query is "defined to fail if S is empty".
        assert not any(fact.startswith("young(bob,") for fact in young)

    def test_rule5_literal_form_rejected_only_in_strict_w3(self):
        from repro.errors import WellFormednessError
        from repro.parser import parse_rule
        from repro.program.wellformed import check_rule_wellformed

        rule = parse_rule("young(X, <Y>) <- ~a(X, Z), sg(X, Y).")
        check_rule_wellformed(rule)  # extended language of Section 6
        with pytest.raises(WellFormednessError):
            check_rule_wellformed(rule, strict_w3=True)
