"""Tests for one-way matching (repro.engine.match)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.match import ground_atom, match_atom, match_term
from repro.parser import parse_atom, parse_term
from tests.strategies import ground_terms, pattern_terms
from repro.program.rule import Atom
from repro.terms.term import Const, SetVal, mkset


def matches(pattern_src, value_src, binding=None):
    pattern = parse_term(pattern_src)
    value = parse_term(value_src)
    assert value.is_ground()
    return list(match_term(pattern, value, binding or {}))


class TestBasicMatching:
    def test_variable_binds(self):
        [b] = matches("X", "f(1)")
        assert b["X"] == parse_term("f(1)")

    def test_bound_variable_must_agree(self):
        assert matches("X", "1", {"X": Const(1)})
        assert not matches("X", "2", {"X": Const(1)})

    def test_constants(self):
        assert matches("a", "a")
        assert not matches("a", "b")

    def test_int_vs_float(self):
        assert not matches("1", "1.0")

    def test_functor_decomposition(self):
        [b] = matches("f(X, g(Y))", "f(1, g(2))")
        assert b["X"] == Const(1) and b["Y"] == Const(2)

    def test_functor_mismatch(self):
        assert not matches("f(X)", "g(1)")
        assert not matches("f(X)", "f(1, 2)")

    def test_shared_variable_consistency(self):
        assert matches("f(X, X)", "f(1, 1)")
        assert not matches("f(X, X)", "f(1, 2)")


class TestSetMatching:
    def test_ground_set_equality(self):
        assert matches("{1, 2}", "{2, 1}")
        assert not matches("{1}", "{1, 2}")

    def test_singleton_pattern(self):
        [b] = matches("{X}", "{7}")
        assert b["X"] == Const(7)

    def test_singleton_pattern_rejects_larger(self):
        assert not matches("{X}", "{1, 2}")

    def test_pair_pattern_covers_set(self):
        bindings = matches("{X, Y}", "{1, 2}")
        pairs = {(b["X"].value, b["Y"].value) for b in bindings}
        assert pairs == {(1, 2), (2, 1)}

    def test_pattern_items_may_collapse(self):
        # {X, Y} can match a singleton with X = Y (duplicates collapse).
        bindings = matches("{X, Y}", "{5}")
        assert any(b["X"] == b["Y"] == Const(5) for b in bindings)

    def test_rest_binds_uncovered(self):
        bindings = matches("{X | R}", "{1, 2}")
        by_x = {b["X"].value: b["R"] for b in bindings}
        assert by_x[1] == mkset([Const(2)])
        assert by_x[2] == mkset([Const(1)])

    def test_rest_with_empty_remainder(self):
        [b] = matches("{X | R}", "{9}")
        assert b["R"] == SetVal()

    def test_pattern_against_non_set_fails(self):
        assert not matches("{X}", "f(1)")

    def test_nested_set_pattern(self):
        [b] = matches("{{X}}", "{{3}}")
        assert b["X"] == Const(3)


class TestSconsMatching:
    def test_scons_decomposes(self):
        bindings = matches("scons(X, T)", "{1, 2}")
        options = {(b["X"].value, frozenset(e.value for e in b["T"])) for b in bindings}
        # For each chosen element, the tail may or may not retain it.
        assert (1, frozenset({2})) in options
        assert (1, frozenset({1, 2})) in options
        assert (2, frozenset({1})) in options

    def test_ground_scons_pattern(self):
        assert matches("scons(1, {2})", "{1, 2}")
        assert not matches("scons(1, {2})", "{1, 3}")

    def test_scons_onto_nonset_fails_quietly(self):
        # pattern grounding falls outside U -> binding not applicable
        assert not matches("scons(1, X)", "{1}", {"X": Const(5)})


class TestAtomHelpers:
    def test_match_atom(self):
        atom = parse_atom("p(X, {Y})")
        fact_args = (Const(1), mkset([Const(2)]))
        [b] = match_atom(atom, fact_args, {})
        assert b == {"X": Const(1), "Y": Const(2)}

    def test_match_atom_arity_mismatch(self):
        atom = parse_atom("p(X)")
        assert not list(match_atom(atom, (Const(1), Const(2)), {}))

    def test_ground_atom_canonicalizes(self):
        atom = parse_atom("p(scons(X, {2}))")
        fact = ground_atom(atom, {"X": Const(1)})
        assert fact == Atom("p", (mkset([Const(1), Const(2)]),))

    def test_ground_atom_outside_universe_is_none(self):
        atom = parse_atom("p(scons(1, X))")
        assert ground_atom(atom, {"X": Const(3)}) is None

    def test_ground_atom_non_ground_is_none(self):
        atom = parse_atom("p(X)")
        assert ground_atom(atom, {}) is None

    def test_ground_atom_folds_arithmetic(self):
        atom = parse_atom("p(X + 1)")
        assert ground_atom(atom, {"X": Const(2)}) == Atom("p", (Const(3),))


# -- property: matching inverts substitution ---------------------------------


@given(pattern_terms, st.data())
@settings(max_examples=60, deadline=None)
def test_match_inverts_substitution(pattern, data):
    binding = {
        name: data.draw(ground_terms, label=name)
        for name in sorted(pattern.variables())
    }
    value = pattern.substitute(binding)
    assert value.is_ground()
    from repro.terms.term import evaluate_ground

    canonical = evaluate_ground(value)
    solutions = list(match_term(pattern, canonical, {}))
    assert any(
        all(sol.get(name) == term for name, term in binding.items())
        for sol in solutions
    )


@given(pattern_terms, ground_terms)
@settings(max_examples=60, deadline=None)
def test_match_solutions_reproduce_value(pattern, value):
    from repro.terms.term import evaluate_ground

    for solution in match_term(pattern, value, {}):
        substituted = pattern.substitute(solution)
        assert substituted.is_ground()
        assert evaluate_ground(substituted) == value
