"""Tests for static program analysis (repro.program.analyze)."""

from repro.parser import parse_rules
from repro.program.analyze import analyze

PROGRAM = parse_rules(
    """
    parent(a, b). parent(b, c).
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    has_kid(X) <- parent(X, _).
    lonely(X) <- anc(_, X), ~has_kid(X).
    kids(P, <C>) <- parent(P, C), card({1}, N), N = 1.
    """
)


class TestAnalyze:
    def test_counts(self):
        report = analyze(PROGRAM)
        assert report.rule_count == 7
        assert report.fact_count == 2
        assert report.grouping_rules == 1
        assert report.negated_literals == 1
        assert report.builtin_literals == 2

    def test_predicate_roles(self):
        report = analyze(PROGRAM)
        assert report.predicates["parent"].kind == "edb"
        assert report.predicates["anc"].kind == "idb"
        assert report.predicates["parent"].arity == 2
        assert report.predicates["parent"].fact_count == 2
        assert report.predicates["anc"].rule_count == 2

    def test_negated_and_grouped_usage(self):
        report = analyze(PROGRAM)
        assert report.predicates["has_kid"].negated_uses == 1
        assert report.predicates["parent"].grouped_over

    def test_layers_match_stratify(self):
        report = analyze(PROGRAM)
        assert report.predicates["lonely"].layer > report.predicates["has_kid"].layer
        assert report.predicates["kids"].layer > report.predicates["parent"].layer

    def test_recursive_components(self):
        report = analyze(PROGRAM)
        assert frozenset({"anc"}) in report.recursive_components

    def test_mutual_recursion_component(self):
        program = parse_rules(
            """
            even(X) <- z(X).
            even(X) <- s(X, Y), odd(Y).
            odd(X) <- s(X, Y), even(Y).
            """
        )
        report = analyze(program)
        assert frozenset({"even", "odd"}) in report.recursive_components

    def test_format_is_readable(self):
        text = analyze(PROGRAM).format()
        assert "7 rules" in text
        assert "layer 0" in text
        assert "anc/2" in text
        assert "recursive components" in text

    def test_empty_program(self):
        report = analyze(parse_rules(""))
        assert report.rule_count == 0
        assert report.recursive_components == []


class TestCliIntegration:
    def test_check_uses_report(self, tmp_path):
        import io

        from repro.cli import run

        path = tmp_path / "p.ldl"
        path.write_text(
            "anc(X, Y) <- parent(X, Y). anc(X, Y) <- parent(X, Z), anc(Z, Y)."
        )
        out = io.StringIO()
        assert run(["--check", str(path)], out=out) == 0
        text = out.getvalue()
        assert "anc/2" in text
        assert "recursive components" in text

    def test_magic_plan_flag(self, tmp_path):
        import io

        from repro.cli import run

        path = tmp_path / "p.ldl"
        path.write_text(
            "parent(a, b). anc(X, Y) <- parent(X, Y). "
            "anc(X, Y) <- parent(X, Z), anc(Z, Y)."
        )
        out = io.StringIO()
        code = run([str(path), "--magic-plan", "? anc(a, X)."], out=out)
        assert code == 0
        text = out.getvalue()
        assert "[magic]" in text
        assert "m_anc__bf(a)" in text
