"""Tests for derivation trees / provenance (repro.engine.explain)."""

from repro import LDL
from repro.engine import evaluate
from repro.engine.explain import explain
from repro.parser import parse_atom, parse_program
from repro.terms.pretty import format_atom

FAMILY = """
parent(ann, bob). parent(bob, carl). parent(carl, dee).
person(ann). person(bob). person(carl). person(dee).
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
excl(X, Y, Z) <- anc(X, Y), person(Z), ~anc(X, Z).
children(P, <C>) <- parent(P, C).
"""


def session():
    return LDL(FAMILY)


class TestPlainDerivations:
    def test_base_fact(self):
        d = session().explain("parent(ann, bob)")
        assert d is not None
        assert d.is_base()
        assert d.depth() == 1

    def test_one_step(self):
        d = session().explain("anc(ann, bob)")
        assert d.rule is not None
        assert [format_atom(p.fact) for p in d.premises] == ["parent(ann, bob)"]

    def test_recursive_chain_depth(self):
        d = session().explain("anc(ann, dee)")
        assert d.depth() == 4  # anc -> anc -> anc -> parent

    def test_absent_fact_returns_none(self):
        assert session().explain("anc(dee, ann)") is None

    def test_unknown_fact_returns_none(self):
        assert session().explain("anc(nobody, ann)") is None

    def test_every_model_fact_explainable(self):
        db = session()
        program = db.program
        model = db.database()
        for fact in model.sorted_atoms():
            derivation = explain(program, model, fact)
            assert derivation is not None, format_atom(fact)

    def test_premises_are_model_facts(self):
        db = session()
        d = db.explain("anc(ann, dee)")
        model = db.database()
        stack = [d]
        while stack:
            node = stack.pop()
            assert node.fact in model
            stack.extend(node.premises)


class TestNegationAndGrouping:
    def test_negative_premise_recorded_as_absence(self):
        d = session().explain("excl(bob, carl, ann)")
        assert parse_atom("anc(bob, ann)") in d.absences

    def test_grouping_premises_cover_all_elements(self):
        db = LDL(
            "children(P, <C>) <- parent(P, C)."
            "parent(a, b). parent(a, c)."
        )
        d = db.explain("children(a, {b, c})")
        premise_facts = {format_atom(p.fact) for p in d.premises}
        assert premise_facts == {"parent(a, b)", "parent(a, c)"}

    def test_wrong_group_set_not_explainable(self):
        db = LDL(
            "children(P, <C>) <- parent(P, C). parent(a, b). parent(a, c)."
        )
        assert db.explain("children(a, {b})") is None


class TestFormatting:
    def test_format_is_indented_tree(self):
        text = session().explain("anc(ann, carl)").format()
        lines = text.splitlines()
        assert lines[0].startswith("anc(ann, carl)")
        assert any(line.startswith("  ") for line in lines)
        assert "parent(bob, carl)" in text

    def test_size_counts_nodes(self):
        d = session().explain("anc(ann, carl)")
        assert d.size() == 4  # anc(ann,carl), parent(ann,bob), anc(bob,carl), parent(bob,carl)

    def test_repr(self):
        d = session().explain("anc(ann, bob)")
        assert "anc(ann, bob)" in repr(d)


class TestEdbUnderRulePredicate:
    def test_edb_loaded_fact_is_base(self):
        program, _ = parse_program("anc(X, Y) <- parent(X, Y). parent(a, b).")
        result = evaluate(program, edb=[parse_atom("anc(x0, y0)")])
        derivation = explain(program, result.database, parse_atom("anc(x0, y0)"))
        assert derivation is not None
        assert derivation.is_base()
