"""Property-based tests for the term algebra and printer/parser."""

from hypothesis import given
from hypothesis import strategies as st

from repro.engine.relation import decode_row, encode_args
from repro.parser import parse_term
from repro.program.rule import Atom
from repro.storage import codec
from repro.terms.pretty import format_term
from repro.terms.term import (
    Const,
    Func,
    SetVal,
    evaluate_ground,
    intern_term,
    row_id,
    term_id,
    term_of_id,
)
from repro.terms.universe import in_universe, set_depth

from tests.strategies import ground_terms, pattern_terms


@given(ground_terms)
def test_ground_terms_are_in_universe(term):
    assert term.is_ground()
    assert in_universe(term)


@given(ground_terms)
def test_evaluate_ground_is_identity_on_canonical_terms(term):
    assert evaluate_ground(term) == term


@given(ground_terms)
def test_format_parse_roundtrip_ground(term):
    assert parse_term(format_term(term)) == term


@given(pattern_terms)
def test_format_parse_roundtrip_patterns(term):
    assert parse_term(format_term(term)) == term


@given(ground_terms)
def test_sort_key_consistent_with_equality(term):
    # equal terms always produce equal keys; rebuilt copies agree.
    clone = parse_term(format_term(term))
    assert term.sort_key() == clone.sort_key()


@given(st.lists(ground_terms, min_size=2, max_size=6))
def test_sort_keys_give_total_preorder(terms):
    keys = sorted(t.sort_key() for t in terms)  # must not raise
    assert len(keys) == len(terms)


@given(st.lists(ground_terms, min_size=2, max_size=6))
def test_distinct_terms_have_distinct_keys(terms):
    for a in terms:
        for b in terms:
            if a.sort_key() == b.sort_key():
                assert a == b


@given(ground_terms)
def test_variables_empty_for_ground(term):
    assert term.variables() == frozenset()


@given(pattern_terms)
def test_substitute_closes_variables(term):
    binding = {name: Const(0) for name in term.variables()}
    assert term.substitute(binding).is_ground()


@given(pattern_terms)
def test_substitution_composition(term):
    # substituting in two steps equals substituting the composition
    first = {"X": Const(1)}
    second = {"Y": Const(2)}
    combined = {"X": Const(1), "Y": Const(2)}
    assert term.substitute(first).substitute(second) == term.substitute(combined)


@given(st.lists(ground_terms, max_size=5))
def test_set_depth_of_setval(items):
    s = SetVal(items)
    inner = max((set_depth(t) for t in s.elements), default=0)
    assert set_depth(s) == inner + 1


@given(st.lists(ground_terms, max_size=5), st.lists(ground_terms, max_size=5))
def test_setval_union_via_frozenset(a_items, b_items):
    a = SetVal(a_items)
    b = SetVal(b_items)
    union = SetVal(a.elements | b.elements)
    assert all(x in union for x in a)
    assert all(x in union for x in b)
    assert len(union) <= len(a) + len(b)


# -- dense term IDs and codec bytes ------------------------------------------
#
# The columnar storage layer rests on two bridges out of term space:
# dense intern IDs (term <-> int) and the codec (term <-> canonical
# bytes).  The strategy widens ``ground_terms`` with quoted string
# constants — the one universe corner where faithful IDs, equality-class
# IDs, and codec bytes all behave differently — nested under functors
# and sets like any other constant.

_quoted_consts = st.sampled_from(["a", "b", "it's"]).map(
    lambda s: Const(s, quoted=True)
)
codec_ground_terms = st.recursive(
    st.one_of(
        st.integers(min_value=-20, max_value=20).map(Const),
        st.sampled_from(["a", "b", "c"]).map(Const),
        _quoted_consts,
    ),
    lambda children: st.one_of(
        st.builds(
            lambda name, args: Func(name, args),
            st.sampled_from(["f", "g"]),
            st.lists(children, min_size=1, max_size=3),
        ),
        st.builds(lambda items: SetVal(items), st.lists(children, max_size=4)),
    ),
    max_leaves=10,
)


@given(codec_ground_terms)
def test_term_to_dense_id_round_trip(term):
    canonical = intern_term(term)
    assert term_of_id(term_id(term)) is canonical
    # the equality-class representative is equal, though possibly a
    # different object (quoted/unquoted strings share one class)
    assert term_of_id(row_id(term)) == term


@given(codec_ground_terms)
def test_dense_id_to_codec_bytes_round_trip(term):
    canonical = intern_term(term)
    fragment = codec.term_fragment(canonical)
    # memoized fragment is byte-identical to the unmemoized encoding
    assert fragment == codec.dumps(codec.encode_term(canonical))
    # and decodes back to the same interned object
    assert codec.decode_term(codec.loads(fragment)) is canonical


@given(st.lists(codec_ground_terms, min_size=1, max_size=4))
def test_atom_row_codec_round_trip(args):
    atom = Atom("p", tuple(intern_term(a) for a in args))
    row = encode_args(atom.args)
    # atom bytes and ID-row bytes agree on the equality-class view
    decoded = Atom("p", decode_row(row))
    assert codec.dumps_id_row("p", row) == codec.dumps_atom(decoded)
    assert decoded == atom
    # the full cycle: atom -> bytes -> (pred, row) -> terms
    pred, parsed_row = codec.decode_atom_row(
        codec.loads(codec.dumps_atom(atom))
    )
    assert pred == "p" and parsed_row == row
    assert Atom(pred, decode_row(parsed_row)) == atom


@given(codec_ground_terms)
def test_faithful_id_keeps_codec_distinctions(term):
    # distinct faithful IDs can disagree on bytes; equal row IDs mean
    # the decoded representatives are equal terms even when the bytes
    # differ (quoted vs unquoted spelling of one equality class).
    canonical = intern_term(term)
    rep = term_of_id(row_id(term))
    assert rep == canonical
    assert codec.decode_term(
        codec.loads(codec.term_fragment(rep))
    ) == canonical
