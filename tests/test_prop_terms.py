"""Property-based tests for the term algebra and printer/parser."""

from hypothesis import given
from hypothesis import strategies as st

from repro.parser import parse_term
from repro.terms.pretty import format_term
from repro.terms.term import Const, SetVal, evaluate_ground
from repro.terms.universe import in_universe, set_depth

from tests.strategies import ground_terms, pattern_terms


@given(ground_terms)
def test_ground_terms_are_in_universe(term):
    assert term.is_ground()
    assert in_universe(term)


@given(ground_terms)
def test_evaluate_ground_is_identity_on_canonical_terms(term):
    assert evaluate_ground(term) == term


@given(ground_terms)
def test_format_parse_roundtrip_ground(term):
    assert parse_term(format_term(term)) == term


@given(pattern_terms)
def test_format_parse_roundtrip_patterns(term):
    assert parse_term(format_term(term)) == term


@given(ground_terms)
def test_sort_key_consistent_with_equality(term):
    # equal terms always produce equal keys; rebuilt copies agree.
    clone = parse_term(format_term(term))
    assert term.sort_key() == clone.sort_key()


@given(st.lists(ground_terms, min_size=2, max_size=6))
def test_sort_keys_give_total_preorder(terms):
    keys = sorted(t.sort_key() for t in terms)  # must not raise
    assert len(keys) == len(terms)


@given(st.lists(ground_terms, min_size=2, max_size=6))
def test_distinct_terms_have_distinct_keys(terms):
    for a in terms:
        for b in terms:
            if a.sort_key() == b.sort_key():
                assert a == b


@given(ground_terms)
def test_variables_empty_for_ground(term):
    assert term.variables() == frozenset()


@given(pattern_terms)
def test_substitute_closes_variables(term):
    binding = {name: Const(0) for name in term.variables()}
    assert term.substitute(binding).is_ground()


@given(pattern_terms)
def test_substitution_composition(term):
    # substituting in two steps equals substituting the composition
    first = {"X": Const(1)}
    second = {"Y": Const(2)}
    combined = {"X": Const(1), "Y": Const(2)}
    assert term.substitute(first).substitute(second) == term.substitute(combined)


@given(st.lists(ground_terms, max_size=5))
def test_set_depth_of_setval(items):
    s = SetVal(items)
    inner = max((set_depth(t) for t in s.elements), default=0)
    assert set_depth(s) == inner + 1


@given(st.lists(ground_terms, max_size=5), st.lists(ground_terms, max_size=5))
def test_setval_union_via_frozenset(a_items, b_items):
    a = SetVal(a_items)
    b = SetVal(b_items)
    union = SetVal(a.elements | b.elements)
    assert all(x in union for x in a)
    assert all(x in union for x in b)
    assert len(union) <= len(a) + len(b)
