"""Tests for literal planning and body solving (repro.engine.solve)."""

import pytest

from repro.engine.database import Database
from repro.engine.solve import head_facts, order_body, solve_body
from repro.errors import SafetyError
from repro.parser import parse_atom, parse_rule
from repro.terms.term import Const


def plan_of(rule_src, bound=frozenset(), first=None):
    rule = parse_rule(rule_src)
    return order_body(rule.body, bound, first=first), rule


class TestOrderBody:
    def test_negation_after_binding(self):
        plan, rule = plan_of("p(X) <- ~r(X), q(X).")
        # ~r(X) needs X bound: q must come first
        assert plan == (1, 0)

    def test_test_builtins_run_early(self):
        plan, rule = plan_of("p(X) <- q(X), X < 3, r(X).")
        # once q binds X, the cheap comparison precedes the second scan
        assert plan.index(1) < plan.index(2)

    def test_equality_as_soon_as_one_side_bound(self):
        plan, rule = plan_of("p(Y) <- q(X), Y = X + 1, r(Y).")
        assert plan == (0, 1, 2)

    def test_generative_builtin_deferred(self):
        # partition's generative mode runs only after S is bound
        plan, rule = plan_of("p(A, B) <- partition(S, A, B), s(S).")
        assert plan == (1, 0)

    def test_forced_first_occurrence(self):
        plan, rule = plan_of(
            "t(X, Y) <- e(X, Z), t(Z, Y).", first=1
        )
        assert plan[0] == 1

    def test_unsafe_body_raises(self):
        rule = parse_rule("p(X) <- q(X), ~r(X, Z).")
        with pytest.raises(SafetyError):
            order_body(rule.body)

    def test_bound_args_preferred(self):
        # with X pre-bound, the literal using X should be first
        plan, rule = plan_of(
            "p(X, Y) <- big(Y), keyed(X, Y).", bound=frozenset({"X"})
        )
        assert plan == (1, 0)

    def test_empty_body(self):
        assert order_body(()) == ()


class TestSolveBody:
    def _db(self):
        db = Database()
        for src in ("q(1)", "q(2)", "q(3)", "r(2)", "s(1, 10)", "s(3, 30)"):
            db.add(parse_atom(src))
        return db

    def test_join(self):
        rule = parse_rule("p(X, V) <- q(X), s(X, V).")
        results = {
            (b["X"].value, b["V"].value)
            for b in solve_body(self._db(), rule.body)
        }
        assert results == {(1, 10), (3, 30)}

    def test_negation_filters(self):
        rule = parse_rule("p(X) <- q(X), ~r(X).")
        values = {b["X"].value for b in solve_body(self._db(), rule.body)}
        assert values == {1, 3}

    def test_negated_builtin(self):
        rule = parse_rule("p(X) <- q(X), ~member(X, {1, 2}).")
        values = {b["X"].value for b in solve_body(self._db(), rule.body)}
        assert values == {3}

    def test_initial_binding_restricts(self):
        rule = parse_rule("p(X) <- q(X).")
        results = list(
            solve_body(self._db(), rule.body, binding={"X": Const(2)})
        )
        assert len(results) == 1

    def test_overrides_swap_source(self):
        rule = parse_rule("p(X) <- q(X).")
        plan = order_body(rule.body)
        override_tuples = [(Const(99),)]
        results = list(
            solve_body(
                self._db(), rule.body, plan, overrides={0: override_tuples}
            )
        )
        assert [b["X"].value for b in results] == [99]

    def test_head_facts_skips_outside_universe(self):
        rule = parse_rule("p(scons(1, X)) <- q(X).")
        # scons onto non-set values (1, 2, 3) falls outside U: no facts
        facts = list(
            head_facts(rule.head, solve_body(self._db(), rule.body))
        )
        assert facts == []

    def test_head_facts_canonicalize(self):
        rule = parse_rule("p(X + 1) <- q(X).")
        facts = {
            f.args[0].value
            for f in head_facts(rule.head, solve_body(self._db(), rule.body))
        }
        assert facts == {2, 3, 4}

    def test_arithmetic_filter_chain(self):
        rule = parse_rule("p(X, V) <- q(X), s(X, V), V > 10, X != 2.")
        results = {
            (b["X"].value, b["V"].value)
            for b in solve_body(self._db(), rule.body)
        }
        assert results == {(3, 30)}
