"""Tests for indexed relations and the fact database (repro.engine)."""

import pytest

from repro.engine.database import Database
from repro.engine.relation import Relation, decode_row, encode_args
from repro.parser import parse_atom
from repro.terms.term import Const


def t(*values):
    return tuple(Const(v) for v in values)


class TestRelation:
    def test_add_is_idempotent(self):
        rel = Relation("p", 2)
        assert rel.add(t(1, 2))
        assert not rel.add(t(1, 2))
        assert len(rel) == 1

    def test_arity_enforced(self):
        rel = Relation("p", 2)
        with pytest.raises(ValueError):
            rel.add(t(1))

    def test_lookup_builds_index(self):
        rel = Relation("p", 2)
        rel.add_all([t(1, 2), t(1, 3), t(2, 4)])
        hits = set(rel.lookup((0,), t(1)))
        assert hits == {t(1, 2), t(1, 3)}

    def test_index_maintained_after_insert(self):
        rel = Relation("p", 2)
        rel.add(t(1, 2))
        assert len(list(rel.lookup((0,), t(1)))) == 1
        rel.add(t(1, 9))  # inserted after the index exists
        assert len(list(rel.lookup((0,), t(1)))) == 2

    def test_lookup_multiple_positions(self):
        rel = Relation("p", 3)
        rel.add_all([t(1, 2, 3), t(1, 2, 4), t(1, 5, 3)])
        assert len(list(rel.lookup((0, 1), t(1, 2)))) == 2

    def test_empty_signature_scans_all(self):
        rel = Relation("p", 1)
        rel.add_all([t(1), t(2)])
        assert len(list(rel.lookup((), ()))) == 2

    def test_miss_returns_empty(self):
        rel = Relation("p", 1)
        rel.add(t(1))
        assert list(rel.lookup((0,), t(9))) == []

    def test_copy_is_independent(self):
        rel = Relation("p", 1)
        rel.add(t(1))
        clone = rel.copy()
        clone.add(t(2))
        assert len(rel) == 1 and len(clone) == 2

    def test_copy_preserves_built_indexes(self):
        rel = Relation("p", 2)
        rel.add_all([t(1, 2), t(1, 3), t(2, 4)])
        rel.lookup((0,), t(1))  # build the position-0 index
        clone = rel.copy()
        assert (0,) in clone._indexes
        assert set(clone.lookup((0,), t(1))) == {t(1, 2), t(1, 3)}

    def test_copied_indexes_are_independent(self):
        rel = Relation("p", 2)
        rel.add(t(1, 2))
        rel.lookup((0,), t(1))
        clone = rel.copy()
        clone.add(t(1, 9))
        rel.add(t(1, 7))
        assert set(clone.lookup((0,), t(1))) == {t(1, 2), t(1, 9)}
        assert set(rel.lookup((0,), t(1))) == {t(1, 2), t(1, 7)}


class TestColumnarStorage:
    """ID-row layer invariants: both index families survive copy and
    stay consistent across discard's swap-remove compaction."""

    def _encoded(self, *values):
        return encode_args(t(*values))

    def test_id_rows_match_term_view(self):
        rel = Relation("p", 2)
        rel.add_all([t(1, 2), t(1, 3), t(2, 4)])
        assert {decode_row(row) for row in rel.id_rows()} == set(rel)
        assert len(rel.column(0)) == 3

    def test_copy_preserves_id_indexes(self):
        rel = Relation("p", 2)
        rel.add_all([t(1, 2), t(1, 3), t(2, 4)])
        rel.id_index((0,))  # build the columnar position-0 index
        rel.lookup((0,), t(1))  # and the term-level one
        clone = rel.copy()
        assert (0,) in clone._id_indexes and (0,) in clone._indexes
        key = self._encoded(1)[0]  # bare int key for 1-position sigs
        assert clone.id_index((0,))[key] == {
            self._encoded(1, 2), self._encoded(1, 3)
        }

    def test_copied_id_indexes_are_independent(self):
        rel = Relation("p", 2)
        rel.add(t(1, 2))
        rel.id_index((0,))
        clone = rel.copy()
        clone.add(t(1, 9))
        rel.add(t(1, 7))
        key = self._encoded(1)[0]
        assert clone.id_index((0,))[key] == {
            self._encoded(1, 2), self._encoded(1, 9)
        }
        assert rel.id_index((0,))[key] == {
            self._encoded(1, 2), self._encoded(1, 7)
        }

    def test_discard_maintains_both_index_families(self):
        rel = Relation("p", 2)
        rel.add_all([t(1, 2), t(1, 3), t(2, 4)])
        rel.id_index((0,))
        rel.lookup((0,), t(1))
        assert rel.discard(t(1, 2))
        key = self._encoded(1)[0]
        assert rel.id_index((0,))[key] == {self._encoded(1, 3)}
        assert set(rel.lookup((0,), t(1))) == {t(1, 3)}
        # swap-remove must leave columns parallel to the row set
        assert {decode_row(row) for row in rel.id_rows()} == set(rel)
        for pos in range(rel.arity):
            assert len(rel.column(pos)) == len(rel)

    def test_discard_after_copy_leaves_original_intact(self):
        rel = Relation("p", 2)
        rel.add_all([t(1, 2), t(1, 3)])
        rel.id_index((0,))
        rel.lookup((0,), t(1))
        clone = rel.copy()
        assert clone.discard(t(1, 2))
        assert not clone.discard(t(9, 9))
        assert set(clone) == {t(1, 3)}
        assert set(rel) == {t(1, 2), t(1, 3)}
        key = self._encoded(1)[0]
        assert rel.id_index((0,))[key] == {
            self._encoded(1, 2), self._encoded(1, 3)
        }
        assert set(rel.lookup((0,), t(1))) == {t(1, 2), t(1, 3)}

    def test_empty_bucket_dropped_on_discard(self):
        rel = Relation("p", 2)
        rel.add_all([t(1, 2), t(2, 4)])
        rel.id_index((0,))
        rel.discard(t(2, 4))
        assert self._encoded(2)[0] not in rel.id_index((0,))


class TestDatabase:
    def test_add_and_contains(self):
        db = Database()
        atom = parse_atom("p(1, 2)")
        assert db.add(atom)
        assert atom in db
        assert not db.add(atom)

    def test_rejects_non_ground(self):
        db = Database()
        with pytest.raises(ValueError):
            db.add(parse_atom("p(X)"))

    def test_count(self):
        db = Database([parse_atom("p(1)"), parse_atom("p(2)"), parse_atom("q(1)")])
        assert db.count("p") == 2
        assert db.count("missing") == 0
        assert db.count() == 3

    def test_atoms_roundtrip(self):
        facts = {parse_atom("p(1)"), parse_atom("q(2, 3)")}
        db = Database(facts)
        assert set(db.atoms()) == facts

    def test_sorted_atoms_deterministic(self):
        db = Database([parse_atom("p(2)"), parse_atom("p(1)")])
        assert [a.args[0].value for a in db.sorted_atoms("p")] == [1, 2]

    def test_copy_independent(self):
        db = Database([parse_atom("p(1)")])
        clone = db.copy()
        clone.add(parse_atom("p(2)"))
        assert db.count() == 1 and clone.count() == 2

    def test_equality_by_content(self):
        a = Database([parse_atom("p(1)")])
        b = Database([parse_atom("p(1)")])
        assert a == b
        b.add(parse_atom("p(2)"))
        assert a != b

    def test_tuples_of_unknown_pred_empty(self):
        assert list(Database().tuples("nope")) == []

    def test_same_pred_same_arity_enforced(self):
        db = Database([parse_atom("p(1)")])
        with pytest.raises(ValueError):
            db.add(parse_atom("p(1, 2)"))


class TestCopyOnWrite:
    def test_copy_shares_lanes_until_write(self):
        rel = Relation("p", 2)
        rel.add_all([t(1, 2), t(3, 4)])
        clone = rel.copy()
        # O(1) copy: both sides reference the same column buffers
        assert clone.column(0) is rel.column(0)
        assert clone._rowpos is rel._rowpos

    def test_write_to_clone_unshares(self):
        rel = Relation("p", 1)
        rel.add(t(1))
        clone = rel.copy()
        clone.add(t(2))
        assert clone.column(0) is not rel.column(0)
        assert len(rel) == 1 and len(clone) == 2
        assert t(2) in clone and t(2) not in rel

    def test_write_to_original_unshares(self):
        rel = Relation("p", 1)
        rel.add(t(1))
        clone = rel.copy()
        rel.add(t(2))
        assert len(rel) == 2 and len(clone) == 1

    def test_discard_unshares(self):
        rel = Relation("p", 1)
        rel.add_all([t(1), t(2)])
        clone = rel.copy()
        assert clone.discard(t(1))
        assert t(1) in rel and t(1) not in clone

    def test_noop_mutations_keep_sharing(self):
        rel = Relation("p", 1)
        rel.add(t(1))
        clone = rel.copy()
        assert not clone.add(t(1))        # duplicate: no write
        assert not clone.discard(t(9))    # absent: no write
        assert clone.column(0) is rel.column(0)

    def test_bulk_add_rows_unshares(self):
        from repro.engine.relation import decode_row

        rel = Relation("p", 1)
        rel.add(t(1))
        clone = rel.copy()
        pairs = clone.add_rows([encode_args(t(2))], decode_row)
        assert [args for _, args in pairs] == [t(2)]
        assert len(rel) == 1 and len(clone) == 2

    def test_unshare_leaves_exported_lane_valid(self):
        rel = Relation("p", 1)
        rel.add(t(1))
        clone = rel.copy()
        view = rel.lane(0)
        # the clone's unshare builds fresh buffers, so the original's
        # exported lane stays readable and the write still succeeds
        assert clone.add(t(2))
        assert list(view) == list(encode_args(t(1)))
        view.release()

    def test_add_rows_dedupes_and_skips_stored(self):
        from repro.engine.relation import decode_row

        rel = Relation("p", 1)
        rel.add(t(1))
        rows = [
            encode_args(t(1)),  # already stored
            encode_args(t(2)),
            encode_args(t(2)),  # duplicate in the batch
            encode_args(t(3)),
        ]
        pairs = rel.add_rows(rows, decode_row)
        assert [args for _, args in pairs] == [t(2), t(3)]
        assert len(rel) == 3

    def test_add_rows_maintains_existing_indexes(self):
        from repro.engine.relation import decode_row

        rel = Relation("p", 2)
        rel.add(t(1, 2))
        rel.id_index((0,))      # force both index families to exist
        rel.probe_index((0,))
        rel.add_rows([encode_args(t(1, 3)), encode_args(t(4, 5))], decode_row)
        assert set(rel.lookup((0,), t(1))) == {t(1, 2), t(1, 3)}
        assert len(rel.id_index((0,))[encode_args(t(1, 2))[0]]) == 2
