"""Property tests: cached rule plans compute the same model as
per-call planning, across strategies and planner policies.

The compile/execute split must be invisible in the computed model: a
plan cached once in an EvalContext and reused for every fixpoint
iteration has to yield exactly the facts that re-planning (and
re-matching via solve_body) would, for naive and semi-naive evaluation
and for both planner policies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.plan import apply_rule_plan, compile_rule
from repro.engine.solve import head_facts, solve_body
from repro.parser import parse_rules
from repro.program.rule import Atom
from repro.terms.term import Const

TC_RULES = """
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
"""

NEG_RULES = """
node(X) <- e(X, _).
node(Y) <- e(_, Y).
has_in(Y) <- e(_, Y).
root(X) <- node(X), ~has_in(X).
reach(X) <- root(X).
reach(Y) <- reach(X), e(X, Y).
"""

edges = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)),
    max_size=20,
    unique=True,
)


def edge_atoms(pairs):
    return [Atom("e", (Const(a), Const(b))) for a, b in pairs]


@given(edges, st.sampled_from(["naive", "seminaive"]), st.sampled_from(["static", "sized"]))
@settings(max_examples=40, deadline=None)
def test_every_strategy_planner_combo_agrees(pairs, strategy, planner):
    program = parse_rules(TC_RULES)
    edb = edge_atoms(pairs)
    reference = evaluate(program, edb=edb, strategy="seminaive", planner="static")
    result = evaluate(program, edb=edb, strategy=strategy, planner=planner)
    assert result.database == reference.database


@given(edges, st.sampled_from(["static", "sized"]))
@settings(max_examples=25, deadline=None)
def test_planner_policy_invariant_under_negation(pairs, planner):
    program = parse_rules(NEG_RULES)
    edb = edge_atoms(pairs)
    reference = evaluate(program, edb=edb, planner="static")
    result = evaluate(program, edb=edb, planner=planner)
    assert result.database == reference.database


@given(edges)
@settings(max_examples=30, deadline=None)
def test_cached_plan_equals_fresh_compilation(pairs):
    """A plan reused across growing databases matches per-call planning."""
    rules = parse_rules(TC_RULES)
    db = Database(edge_atoms(pairs))
    ctx = EvalContext(db)
    for _ in range(3):  # grow the db, reusing the cached plans each round
        for rule in rules.rules:
            cached = set(apply_rule_plan(db, ctx.plan_for(rule)))
            fresh = set(apply_rule_plan(db, compile_rule(rule)))
            solved = set(head_facts(rule.head, solve_body(db, rule.body)))
            assert cached == fresh == solved
            for fact in cached:
                db.add(fact)
