"""Tests for the exception hierarchy and error reporting quality."""

import pytest

from repro import LDLError
from repro.errors import (
    EvaluationError,
    LexerError,
    MagicRewriteError,
    NotAdmissibleError,
    NotInUniverseError,
    ParseError,
    SafetyError,
    WellFormednessError,
)
from repro.parser import parse_program, parse_rules
from repro.program.stratify import stratify


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            EvaluationError,
            MagicRewriteError,
            NotAdmissibleError,
            NotInUniverseError,
            SafetyError,
            WellFormednessError,
        ],
    )
    def test_all_derive_from_ldl_error(self, exc_type):
        assert issubclass(exc_type, LDLError)

    def test_safety_is_wellformedness(self):
        assert issubclass(SafetyError, WellFormednessError)

    def test_lexer_and_parse_errors_carry_positions(self):
        with pytest.raises(LexerError) as info:
            parse_program("p(@).")
        assert info.value.line == 1
        assert info.value.column == 3
        with pytest.raises(ParseError) as info:
            parse_program("p(1\nq(2).")
        assert info.value.line == 2


class TestErrorMessages:
    def test_not_admissible_names_cycle(self):
        program = parse_rules("p(X) <- b(X), ~q(X). q(X) <- b(X), ~p(X).")
        with pytest.raises(NotAdmissibleError) as info:
            stratify(program)
        assert set(info.value.cycle) == {"p", "q"}
        assert "p" in str(info.value)

    def test_safety_error_names_variables(self):
        from repro.program.wellformed import check_rule_safe
        from repro.parser import parse_rule

        with pytest.raises(SafetyError) as info:
            check_rule_safe(parse_rule("p(X, Y) <- q(X)."))
        assert "Y" in str(info.value)

    def test_wellformed_error_shows_rule(self):
        from repro.program.wellformed import check_rule_wellformed
        from repro.parser import parse_rule

        with pytest.raises(WellFormednessError) as info:
            check_rule_wellformed(parse_rule("p(<X>, <Y>) <- q(X, Y)."))
        assert "<X>" in str(info.value) or "grouping" in str(info.value)

    def test_catch_all_at_api_boundary(self):
        from repro import LDL

        db = LDL("p(X) <- b(X), ~p(X). b(1).")
        with pytest.raises(LDLError):
            db.query("? p(X).")

    def test_lexer_error_message_mentions_character(self):
        with pytest.raises(LexerError) as info:
            parse_program("p(a) <- q($).")
        assert "$" in str(info.value)
