"""Partitioned parallel evaluation: sharding, exchange, worker pool.

Covers the ``engine/shard`` subsystem bottom-up — the consistent hash
partitioner, relation split/merge, the row-batch wire framing, the
intern-table handshake (including a forked child replaying the full
table after a clear), exchange re-sharding — and top-down: parallel
evaluation must produce exactly the serial model on fixed programs
with negation, grouping, and recursion, and a dead worker must surface
as a clean :class:`EvaluationError`.
"""

import multiprocessing

import pytest
from hypothesis import given, settings

from repro.engine import evaluate
from repro.engine.database import Database
from repro.engine.exec import RowBatch
from repro.engine.relation import Relation, encode_args
from repro.engine.shard import (
    default_workers,
    resolve_workers,
    set_default_workers,
)
from repro.engine.shard.exchange import Exchange
from repro.engine.shard.partition import Partitioner, id_hash
from repro.engine.shard.pool import WorkerPool, fork_available
from repro.errors import EvaluationError
from repro.parser import parse_program, parse_rules
from repro.program.dependency import scc_schedule
from repro.program.stratify import stratify
from repro.storage.codec import (
    StorageError,
    decode_row_batch,
    encode_row_batch,
    intern_table_lines,
    row_batch_bytes,
    sync_intern_lines,
)
from repro.terms.term import (
    Const,
    Func,
    id_table_size,
    intern_term,
    sync_intern_terms,
    term_id,
)
from repro.workloads import chain_family

from tests.strategies import generated_programs

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

TC_RULES = """
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
"""

#: Negation + grouping + recursion in one program: the shapes the
#: parallel gate must route through grouping-on-coordinator, sharded
#: rounds, and stratum ordering at once.
MIXED_SRC = """
e(a, b). e(b, c). e(c, d). e(a, d). e(d, e).
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
succ(X, <Y>) <- t(X, Y).
root(X) <- e(X, _), ~t(a, X).
"""


def _rows(count, width=2, stride=1):
    return [
        encode_args(tuple(Const(f"v{i * stride + j}") for j in range(width)))
        for i in range(count)
    ]


# -- partitioner -------------------------------------------------------------


def test_partitioner_rejects_zero_parts():
    with pytest.raises(ValueError):
        Partitioner(0)


def test_partitioner_covers_disjointly():
    rows = _rows(200)
    for nparts in (1, 2, 3, 7):
        parts = Partitioner(nparts).split_rows(rows, 2)
        assert len(parts) == nparts
        recovered = [row for part in parts for row in part]
        assert sorted(recovered) == sorted(rows)
        seen = set()
        for part in parts:
            assert not (seen & set(part))
            seen |= set(part)


def test_partitioner_is_stable_and_key_based():
    p = Partitioner(4, key=0)
    rows = _rows(50)
    assert p.split_rows(rows, 2) == p.split_rows(rows, 2)
    # same key id => same partition, independent of the other columns
    a = encode_args((Const("k"), Const("x1")))
    b = encode_args((Const("k"), Const("x2")))
    (part_a,) = [i for i, part in enumerate(p.split_rows([a], 2)) if part]
    (part_b,) = [i for i, part in enumerate(p.split_rows([b], 2)) if part]
    assert part_a == part_b


def test_id_hash_is_content_based():
    # equal terms hash equal even through distinct objects — the
    # property that makes partitions agree across processes.
    t1 = intern_term(Func("f", (Const(1), Const("x"))))
    assert id_hash(term_id(t1)) == id_hash(term_id(intern_term(Func("f", (Const(1), Const("x"))))))


def test_partitioner_clamps_key_and_handles_arity_zero():
    p = Partitioner(3, key=5)
    rows = _rows(20, width=1)
    parts = p.split_rows(rows, 1)  # key clamps to column 0
    assert sorted(r for part in parts for r in part) == sorted(rows)
    zero = p.split_rows([()], 0)
    assert zero[0] == [()] and all(not part for part in zero[1:])


def test_split_batch_keeps_lanes_parallel():
    batch = RowBatch("p", 2)
    for i in range(40):
        args = (Const(f"a{i}"), Const(i))
        batch.add(encode_args(args), args)
    parts = Partitioner(3).split_batch(batch)
    total = 0
    for part in parts:
        assert len(part.rows) == len(part.args)
        for row, args in zip(part.rows, part.args):
            assert encode_args(args) == row
        total += len(part.rows)
    assert total == 40


# -- relation split / merge --------------------------------------------------


def test_relation_split_merge_roundtrip():
    rel = Relation("p", 2)
    for i in range(100):
        rel.add((Const(f"k{i % 7}"), Const(i)))
    parts = rel.split(Partitioner(4))
    assert sum(len(p) for p in parts) == len(rel)
    for idx, part in enumerate(parts):
        assert part.partition == (0, 4, idx)
    merged = Relation.merge(parts)
    assert set(merged.id_rows()) == set(rel.id_rows())


def test_relation_merge_rejects_mixed_predicates():
    with pytest.raises(ValueError):
        Relation.merge([Relation("p", 2), Relation("q", 2)])
    with pytest.raises(ValueError):
        Relation.merge([])


# -- wire framing ------------------------------------------------------------


def test_row_batch_roundtrip_below_watermark():
    rows = _rows(30)
    watermark = id_table_size()
    payload = encode_row_batch("p", 2, rows, watermark)
    assert payload[3] == []  # everything in the raw lane
    pred, arity, decoded = decode_row_batch(payload)
    assert (pred, arity) == ("p", 2)
    assert decoded == rows
    assert row_batch_bytes(payload) == 8 * 2 * 30


def test_row_batch_fresh_terms_take_coded_lane():
    watermark = id_table_size()
    fresh = encode_args((Const("zz_fresh_shard_term"), Const(1)))
    old = _rows(3)
    payload = encode_row_batch("p", 2, old + [fresh], watermark)
    assert len(payload[3]) == 1  # only the fresh row is coded
    _, _, decoded = decode_row_batch(payload)
    assert sorted(decoded) == sorted(old + [fresh])


def test_row_batch_rejects_mismatched_lines():
    watermark = id_table_size()
    payload = encode_row_batch("p", 2, _rows(2), watermark)
    alien = encode_row_batch("q", 1, [], 0)
    with pytest.raises(StorageError):
        decode_row_batch(("p", 2, payload[2], list(
            encode_row_batch("q", 2, [encode_args((Const("zq"), Const("zr")))], 0)[3]
        )))
    assert decode_row_batch(alien) == ("q", 1, [])


def test_arity_zero_raw_lane_rejected():
    with pytest.raises(StorageError):
        decode_row_batch(("p", 0, [1], []))


# -- intern-table handshake --------------------------------------------------


def test_sync_intern_terms_accepts_existing_prefix():
    intern_term(Const("handshake_a"))
    size = id_table_size()
    from repro.terms.term import intern_snapshot

    # replaying our own table is a no-op at any start point
    sync_intern_terms(intern_snapshot(0), 0)
    assert id_table_size() == size


def test_sync_intern_terms_rejects_divergence():
    intern_term(Const("handshake_b"))
    size = id_table_size()
    with pytest.raises(ValueError):
        sync_intern_terms([Const("zz_not_that_term")], size - 1)
    with pytest.raises(ValueError):
        sync_intern_terms([Const("zz_any")], size + 10)


def test_sync_intern_lines_wraps_divergence():
    intern_term(Const("handshake_c"))
    size = id_table_size()
    lines = intern_table_lines(size - 1)
    sync_intern_lines(lines, size - 1)  # replaying ourselves: fine
    with pytest.raises(StorageError):
        sync_intern_lines(lines, size + 5)


def _child_replays_table(conn, lines, expected_ids):
    """Forked child: wipe the table, replay the parent's fragments, and
    report whether every probe term lands on the parent's ID."""
    try:
        from repro.storage.codec import sync_intern_lines as replay
        from repro.terms.term import clear_intern_table

        clear_intern_table()
        replay(lines, 0)
        results = {
            name: term_id(intern_term(Const(name)))
            for name in expected_ids
        }
        conn.send(("ok", results))
    except Exception as exc:  # pragma: no cover - failure reporting
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


@needs_fork
def test_fresh_process_replays_intern_table():
    """The spawn-style handshake: a process with an empty intern table
    replays the coordinator's codec fragments and ends up assigning the
    same dense IDs."""
    probes = ("replay_x", "replay_y")
    expected = {
        name: term_id(intern_term(Const(name))) for name in probes
    }
    lines = intern_table_lines(0)
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(
        target=_child_replays_table, args=(child, lines, probes)
    )
    proc.start()
    child.close()
    try:
        assert parent.poll(30), "child never replied"
        status, payload = parent.recv()
        assert status == "ok", payload
        assert payload == expected
    finally:
        proc.join(timeout=10)
        parent.close()


# -- exchange ----------------------------------------------------------------


def test_exchange_reshard_partitions_batch():
    batch = RowBatch("p", 2)
    for i in range(30):
        args = (Const(f"r{i}"), Const(i))
        batch.add(encode_args(args), args)
    parts = Exchange.reshard(batch, Partitioner(3))
    assert sum(len(p.rows) for p in parts) == 30
    assert {row for p in parts for row in p.rows} == set(batch.rows)


# -- worker defaults ---------------------------------------------------------


def test_worker_count_resolution():
    prev = default_workers()
    try:
        set_default_workers(3)
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2
        with pytest.raises(ValueError):
            set_default_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(1000)
    finally:
        set_default_workers(prev)


# -- parallel == serial ------------------------------------------------------


@needs_fork
@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_equals_serial_on_tc(workers):
    program = parse_rules(TC_RULES)
    edb = [
        atom
        for atom in chain_family(60)
    ]
    # chain_family produces parent/2 facts; rename to e/2 for TC_RULES
    from repro.program.rule import Atom

    edb = [Atom("e", atom.args) for atom in edb]
    serial = evaluate(program, edb=edb)
    parallel = evaluate(program, edb=edb, workers=workers)
    assert parallel.database == serial.database
    assert parallel.total_facts == serial.total_facts


@needs_fork
def test_parallel_equals_serial_with_negation_and_grouping():
    program, facts = parse_program(MIXED_SRC)
    serial = evaluate(program, edb=facts)
    parallel = evaluate(program, edb=facts, workers=3)
    assert parallel.database == serial.database


@needs_fork
def test_api_session_accepts_workers():
    from repro.api import LDL

    serial = LDL(MIXED_SRC).database()
    parallel = LDL(MIXED_SRC, workers=2).database()
    assert parallel == serial


@needs_fork
def test_workers_fall_back_to_serial_under_observation():
    """Hook-observed runs stay serial (per-fact hook order is a serial
    contract), silently — same model either way."""
    from repro.observe import TraceRecorder

    program, facts = parse_program(MIXED_SRC)
    trace = TraceRecorder()
    observed = evaluate(program, edb=facts, workers=2, hooks=trace)
    plain = evaluate(program, edb=facts)
    assert observed.database == plain.database
    assert trace.events  # the trace actually ran


@needs_fork
@given(generated=generated_programs)
@settings(max_examples=12, deadline=None)
def test_parallel_equals_serial_on_generated_programs(generated):
    """The partitioned evaluator is an optimization, not a semantics.

    On random admissible programs — negation, grouping, and recursive
    SCCs included — every worker count must produce exactly the serial
    model."""
    serial = evaluate(generated.program, edb=generated.edb)
    for workers in (2, 4):
        parallel = evaluate(
            generated.program, edb=generated.edb, workers=workers
        )
        assert parallel.database == serial.database


# -- failure surfacing -------------------------------------------------------


@needs_fork
def test_dead_worker_raises_evaluation_error():
    program = parse_rules(TC_RULES)
    from repro.program.rule import Atom

    db = Database(
        Atom("e", (Const(f"n{i}"), Const(f"n{i + 1}"))) for i in range(5)
    )
    layering = stratify(program)
    schedule = scc_schedule(program, layering)
    pool = WorkerPool(2, db, schedule)
    try:
        pool.procs[1].terminate()
        pool.procs[1].join(timeout=10)
        with pytest.raises(EvaluationError, match="worker 1"):
            pool.handshake()
    finally:
        pool.terminate()


def test_pool_rejects_single_worker():
    with pytest.raises(ValueError):
        WorkerPool(1, Database(), [])
