"""Tests for incremental model maintenance (repro.engine.incremental)."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.engine.incremental import IncrementalModel
from repro.errors import EvaluationError
from repro.parser import parse_atom, parse_rules
from repro.terms.pretty import format_atom

ANCESTOR = parse_rules(
    """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    """
)

STRATIFIED = parse_rules(
    """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    person(X) <- parent(X, _).
    person(Y) <- parent(_, Y).
    has_kid(X) <- parent(X, _).
    childless(X) <- person(X), ~has_kid(X).
    kids(P, <C>) <- parent(P, C).
    """
)


def fresh_model_equals(model: IncrementalModel) -> bool:
    scratch = evaluate(model.program, edb=model._edb_facts)
    return scratch.database.as_set() == model.as_set()


def atoms(*sources):
    return [parse_atom(s) for s in sources]


class TestInsertions:
    def test_initial_build(self):
        model = IncrementalModel(ANCESTOR, atoms("parent(a, b)"))
        assert parse_atom("anc(a, b)") in model.database

    def test_insert_is_maintained_differentially(self):
        model = IncrementalModel(
            ANCESTOR, atoms("parent(a, b)"), maintain="delta"
        )
        stats = model.add_facts(atoms("parent(b, c)"))
        assert stats.mode == "maintain"
        assert parse_atom("anc(a, c)") in model.database
        assert fresh_model_equals(model)

    def test_monotone_insert_uses_delta_under_recompute_mode(self):
        model = IncrementalModel(
            ANCESTOR, atoms("parent(a, b)"), maintain="recompute"
        )
        stats = model.add_facts(atoms("parent(b, c)"))
        assert stats.mode == "delta"
        assert parse_atom("anc(a, c)") in model.database
        assert fresh_model_equals(model)

    def test_insert_through_negation(self):
        model = IncrementalModel(
            STRATIFIED, atoms("parent(a, b)"), maintain="delta"
        )
        assert parse_atom("childless(b)") in model.database
        stats = model.add_facts(atoms("parent(b, c)"))
        assert stats.mode == "maintain"
        assert parse_atom("childless(b)") not in model.database
        assert fresh_model_equals(model)

    def test_insert_through_negation_recomputes_under_recompute_mode(self):
        model = IncrementalModel(
            STRATIFIED, atoms("parent(a, b)"), maintain="recompute"
        )
        assert parse_atom("childless(b)") in model.database
        stats = model.add_facts(atoms("parent(b, c)"))
        assert stats.mode == "recompute"
        assert parse_atom("childless(b)") not in model.database
        assert fresh_model_equals(model)

    def test_insert_updates_groups(self):
        model = IncrementalModel(STRATIFIED, atoms("parent(a, b)"))
        model.add_facts(atoms("parent(a, c)"))
        kids = {
            format_atom(a) for a in model.database.atoms("kids")
        }
        assert kids == {"kids(a, {b, c})"}
        assert fresh_model_equals(model)

    def test_duplicate_insert_is_noop(self):
        model = IncrementalModel(ANCESTOR, atoms("parent(a, b)"))
        stats = model.add_facts(atoms("parent(a, b)"))
        assert stats.mode == "none"

    def test_insert_into_idb_rejected(self):
        model = IncrementalModel(ANCESTOR, atoms("parent(a, b)"))
        with pytest.raises(EvaluationError):
            model.add_facts(atoms("anc(x, y)"))


class TestDeletions:
    def test_delete_retracts_derivations(self):
        model = IncrementalModel(
            ANCESTOR, atoms("parent(a, b)", "parent(b, c)"),
            maintain="delta",
        )
        assert parse_atom("anc(a, c)") in model.database
        stats = model.remove_facts(atoms("parent(b, c)"))
        assert stats.mode == "maintain"
        assert stats.overdeleted >= 1
        assert parse_atom("anc(a, c)") not in model.database
        assert parse_atom("anc(a, b)") in model.database
        assert fresh_model_equals(model)

    def test_delete_recomputes_under_recompute_mode(self):
        model = IncrementalModel(
            ANCESTOR, atoms("parent(a, b)", "parent(b, c)"),
            maintain="recompute",
        )
        stats = model.remove_facts(atoms("parent(b, c)"))
        assert stats.mode == "recompute"
        assert parse_atom("anc(a, c)") not in model.database
        assert fresh_model_equals(model)

    def test_delete_keeps_alternative_derivations(self):
        model = IncrementalModel(
            ANCESTOR,
            atoms("parent(a, b)", "parent(b, c)", "parent(a, c)"),
        )
        model.remove_facts(atoms("parent(b, c)"))
        assert parse_atom("anc(a, c)") in model.database  # direct edge

    def test_delete_flips_negation(self):
        model = IncrementalModel(
            STRATIFIED, atoms("parent(a, b)", "parent(b, c)")
        )
        assert parse_atom("childless(b)") not in model.database
        model.remove_facts(atoms("parent(b, c)"))
        assert parse_atom("childless(b)") in model.database
        assert fresh_model_equals(model)

    def test_delete_unknown_fact_noop(self):
        model = IncrementalModel(ANCESTOR, atoms("parent(a, b)"))
        assert model.remove_facts(atoms("parent(z, z)")).mode == "none"


class TestConeLocality:
    TWO_ISLANDS = parse_rules(
        """
        anc(X, Y) <- parent(X, Y).
        anc(X, Y) <- parent(X, Z), anc(Z, Y).
        owner(X, Y) <- owns(X, Y).
        owner(X, Y) <- owns(X, Z), owner(Z, Y).
        """
    )

    def test_untouched_island_not_recomputed(self):
        model = IncrementalModel(
            self.TWO_ISLANDS,
            atoms("parent(a, b)", "owns(o1, o2)", "owns(o2, o3)"),
        )
        stats = model.add_facts(atoms("parent(b, c)"))
        # the owns/owner island is outside the cone
        assert stats.affected_predicates == 2  # parent, anc
        assert fresh_model_equals(model)

    def test_program_facts_preserved_across_updates(self):
        program = parse_rules(
            "parent(seed, root). anc(X, Y) <- parent(X, Y)."
        )
        model = IncrementalModel(program)
        assert parse_atom("anc(seed, root)") in model.database
        model.add_facts(atoms("parent(a, b)"))
        assert parse_atom("anc(seed, root)") in model.database


edge_lists = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),
    min_size=1,
    max_size=10,
    unique=True,
)


@given(edge_lists, edge_lists)
@settings(max_examples=25, deadline=None)
def test_property_updates_match_scratch_evaluation(initial, updates):
    initial_atoms = [parse_atom(f"parent({a}, {b})") for a, b in initial]
    model = IncrementalModel(STRATIFIED, initial_atoms)
    assert fresh_model_equals(model)
    update_atoms = [parse_atom(f"parent({a}, {b})") for a, b in updates]
    model.add_facts(update_atoms)
    assert fresh_model_equals(model)
    model.remove_facts(update_atoms[: len(update_atoms) // 2])
    assert fresh_model_equals(model)
    model.remove_facts(initial_atoms)
    assert fresh_model_equals(model)
