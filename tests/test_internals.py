"""White-box tests for evaluator internals: tabling, magic phases,
incremental bookkeeping, and statistics plumbing."""


from repro.engine import evaluate
from repro.engine.incremental import IncrementalModel
from repro.engine.topdown import TopDownEvaluator
from repro.magic import evaluate_magic
from repro.parser import parse_atom, parse_program, parse_query, parse_rules

ANCESTOR = """
parent(a, b). parent(b, c). parent(c, d).
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
"""


class TestTopDownTables:
    def test_subgoal_key_includes_bound_args_only(self):
        program, _ = parse_program(ANCESTOR)
        evaluator = TopDownEvaluator(program)
        evaluator.query(parse_query("? anc(a, X)."))
        keys = {key for (pred, key) in evaluator._tables if pred == "anc"}
        for key in keys:
            assert key[1] is None  # second argument always free

    def test_tables_marked_complete_after_solve(self):
        program, _ = parse_program(ANCESTOR)
        evaluator = TopDownEvaluator(program)
        evaluator.query(parse_query("? anc(a, X)."))
        assert all(t.complete for t in evaluator._tables.values())

    def test_second_query_reuses_tables(self):
        program, _ = parse_program(ANCESTOR)
        evaluator = TopDownEvaluator(program)
        evaluator.query(parse_query("? anc(a, X)."))
        subgoals_before = evaluator.stats.subgoals
        rounds_before = evaluator.stats.driver_rounds
        evaluator.query(parse_query("? anc(a, X)."))
        assert evaluator.stats.subgoals == subgoals_before
        # a completed root returns without another driver round
        assert evaluator.stats.driver_rounds == rounds_before

    def test_distinct_keys_get_distinct_tables(self):
        program, _ = parse_program(ANCESTOR)
        evaluator = TopDownEvaluator(program)
        evaluator.query(parse_query("? anc(a, X)."))
        evaluator.query(parse_query("? anc(b, X)."))
        anc_tables = [k for (p, k) in evaluator._tables if p == "anc"]
        assert len(anc_tables) >= 2


class TestMagicPhases:
    def test_pure_positive_program_single_phase(self):
        program, _ = parse_program(ANCESTOR)
        result = evaluate_magic(program, parse_query("? anc(a, X)."))
        # no deferred rules: the loop runs saturation once, sees no
        # deferred change, and stops.
        assert result.stats.phases == 1
        assert result.stats.deferred_facts == 0

    def test_grouping_adds_phase(self):
        program, _ = parse_program(
            ANCESTOR + "descendants(X, <Y>) <- anc(X, Y)."
        )
        result = evaluate_magic(program, parse_query("? descendants(a, S)."))
        assert result.stats.phases >= 2
        assert result.stats.deferred_facts >= 1

    def test_seed_in_database(self):
        program, _ = parse_program(ANCESTOR)
        result = evaluate_magic(program, parse_query("? anc(a, X)."))
        assert parse_atom("m_anc__bf(a)") in result.database


class TestIncrementalBookkeeping:
    def test_update_stats_modes(self):
        program = parse_rules(
            """
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            """
        )
        # the legacy update paths, pinned via maintain="recompute"
        model = IncrementalModel(
            program, [parse_atom("parent(a, b)")], maintain="recompute"
        )
        delta = model.add_facts([parse_atom("parent(b, c)")])
        assert delta.mode == "delta"
        assert delta.fixpoint.facts_derived >= 2
        removal = model.remove_facts([parse_atom("parent(b, c)")])
        assert removal.mode == "recompute"
        assert removal.facts_removed >= 1

    def test_maintained_update_stats(self):
        program = parse_rules(
            """
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            """
        )
        model = IncrementalModel(
            program, [parse_atom("parent(a, b)")], maintain="delta"
        )
        delta = model.add_facts([parse_atom("parent(b, c)")])
        assert delta.mode == "maintain"
        assert delta.fixpoint.facts_derived >= 2
        removal = model.remove_facts([parse_atom("parent(b, c)")])
        assert removal.mode == "maintain"
        assert removal.overdeleted >= 2
        assert removal.facts_removed >= 1
        totals = model.maintenance
        assert totals.updates == 2
        assert totals.delta_updates == 2
        assert totals.recompute_updates == 0

    def test_recompute_counts_only_idb_facts(self):
        program = parse_rules("q(X) <- p(X).")
        model = IncrementalModel(
            program,
            [parse_atom("p(1)"), parse_atom("p(2)")],
            maintain="recompute",
        )
        stats = model.remove_facts([parse_atom("p(2)")])
        # removed: q(1), q(2) rebuilt; p facts reinstated, not counted
        assert stats.facts_removed == 2

    def test_edb_facts_tracked_separately(self):
        program = parse_rules("q(X) <- p(X).")
        model = IncrementalModel(program, [parse_atom("p(1)")])
        assert parse_atom("p(1)") in model._edb_facts
        assert parse_atom("q(1)") not in model._edb_facts


class TestEvaluationStatsPlumbing:
    def test_layer_stats_sum_to_totals(self):
        program, _ = parse_program(
            ANCESTOR + """
            has_kid(X) <- parent(X, _).
            leaf(Y) <- parent(_, Y), ~has_kid(Y).
            kids(P, <C>) <- parent(P, C).
            """
        )
        result = evaluate(program)
        assert result.total_iterations == sum(
            s.fixpoint.iterations for s in result.layer_stats
        )
        assert result.total_firings == sum(
            s.fixpoint.rule_firings for s in result.layer_stats
        )
        assert sum(s.grouping_facts for s in result.layer_stats) == 3

    def test_grouping_facts_counted_per_layer(self):
        program, _ = parse_program("g(K, <V>) <- e(K, V). e(a, 1). e(b, 2).")
        result = evaluate(program)
        grouping_layer = result.layer_stats[-1]
        assert grouping_layer.grouping_facts == 2


class TestDeepRecursion:
    """Derivations and subgoal chains scale with the data, not the
    default interpreter recursion limit."""

    CHAIN_RULES = """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    """

    def test_explain_long_chain(self):
        import sys

        from repro import LDL
        from repro.workloads import chain_family

        before = sys.getrecursionlimit()
        db = LDL(self.CHAIN_RULES).add_atoms(chain_family(600))
        derivation = db.explain("anc(p0, p600)")
        assert derivation.depth() == 601
        assert derivation.size() == 1200
        assert "anc(p0, p600)" in derivation.format().splitlines()[0]
        assert sys.getrecursionlimit() == before  # restored

    def test_topdown_long_chain(self):
        import sys

        from repro.engine.topdown import evaluate_topdown
        from repro.parser import parse_program, parse_query
        from repro.workloads import chain_family

        before = sys.getrecursionlimit()
        program, _ = parse_program(self.CHAIN_RULES)
        answers, _ = evaluate_topdown(
            program, parse_query("? anc(p0, X)."), edb=chain_family(600)
        )
        assert len(answers) == 600
        assert sys.getrecursionlimit() == before

    def test_deep_recursion_utility(self):
        import sys

        from repro.util import MAX_RECURSION_LIMIT, deep_recursion

        before = sys.getrecursionlimit()
        with deep_recursion(before + 1234):
            assert sys.getrecursionlimit() == before + 1234
        assert sys.getrecursionlimit() == before
        with deep_recursion(10 ** 9):
            assert sys.getrecursionlimit() == MAX_RECURSION_LIMIT
        assert sys.getrecursionlimit() == before
        with deep_recursion(10):  # never lowered
            assert sys.getrecursionlimit() == before
