"""DurableStore behavior: restore modes, compaction, API and CLI wiring."""

import io
import os

import pytest

from repro import LDL, evaluate
from repro.cli import run as cli_run
from repro.engine.database import Database
from repro.errors import EvaluationError, StorageError
from repro.observe import MetricsCollector, TraceRecorder, compose_hooks
from repro.parser import parse_atom, parse_rules
from repro.storage.store import DurableStore
from repro.storage.wal import WriteAheadLog

ANCESTOR = parse_rules(
    """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    """
)

STRATIFIED = parse_rules(
    """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    person(X) <- parent(X, _).
    person(Y) <- parent(_, Y).
    has_kid(X) <- parent(X, _).
    childless(X) <- person(X), ~has_kid(X).
    kids(P, <C>) <- parent(P, C).
    """
)


def atoms(*sources):
    return [parse_atom(s) for s in sources]


def scratch_model(program, edb):
    return evaluate(program, edb=edb).database.as_set()


class TestOpenModes:
    def test_cold_start(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path) as store:
            assert store.stats.restore_mode == "cold"
            store.add_facts(atoms("parent(a, b)", "parent(b, c)"))
            assert parse_atom("anc(a, c)") in store.database

    def test_wal_replay_restores_model(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path) as store:
            store.add_facts(atoms("parent(a, b)"))
            store.add_facts(atoms("parent(b, c)"))
            store.remove_facts(atoms("parent(a, b)"))
            expected = store.database.as_set()
        with DurableStore(ANCESTOR, tmp_path) as store:
            assert store.stats.restore_mode == "cold"
            assert store.stats.wal_records_replayed == 3
            assert store.database.as_set() == expected
            assert store.database.as_set() == scratch_model(
                ANCESTOR, store.edb_facts
            )

    def test_snapshot_restore_skips_fixpoint(self, tmp_path):
        with DurableStore(STRATIFIED, tmp_path) as store:
            store.add_facts(atoms("parent(a, b)", "parent(b, c)"))
            store.checkpoint()
            expected = store.database.as_set()
        recorder = TraceRecorder()
        with DurableStore(STRATIFIED, tmp_path, hooks=recorder) as store:
            assert store.stats.restore_mode == "snapshot"
            assert store.database.as_set() == expected
        # the whole point: no layers entered, no iterations, no firings
        assert recorder.count("layer_start") == 0
        assert recorder.count("iteration") == 0
        assert recorder.count("rule_fired") == 0
        loads = [e for e in recorder.events if e.kind == "snapshot_load"]
        assert len(loads) == 1 and loads[0].payload["restored"] is True

    def test_snapshot_plus_wal_tail(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path) as store:
            store.add_facts(atoms("parent(a, b)"))
            store.checkpoint()
            store.add_facts(atoms("parent(b, c)"))
        with DurableStore(ANCESTOR, tmp_path) as store:
            assert store.stats.restore_mode == "snapshot"
            assert store.stats.wal_records_replayed == 1
            assert parse_atom("anc(a, c)") in store.database

    def test_program_change_invalidates_snapshot(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path) as store:
            store.add_facts(atoms("parent(a, b)", "parent(b, c)"))
            store.checkpoint()
        with DurableStore(STRATIFIED, tmp_path) as store:
            assert store.stats.restore_mode == "rebuild"
            # EDB carried over, IDB recomputed under the new rules
            assert parse_atom("childless(c)") in store.database
            assert store.database.as_set() == scratch_model(
                STRATIFIED, store.edb_facts
            )

    def test_double_open_rejected(self, tmp_path):
        store = DurableStore(ANCESTOR, tmp_path).open()
        with pytest.raises(StorageError):
            store.open()
        store.close()

    def test_closed_store_rejects_use(self, tmp_path):
        store = DurableStore(ANCESTOR, tmp_path)
        with pytest.raises(StorageError):
            store.add_facts(atoms("parent(a, b)"))
        with pytest.raises(StorageError):
            store.database


class TestCompaction:
    def test_auto_compaction_after_n_records(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path, compact_every=3) as store:
            for i in range(7):
                store.add_facts(atoms(f"parent(n{i}, n{i + 1})"))
            # 7 appends, compaction at every 3rd: wal holds the tail only
            assert store.wal.record_count < 3
            assert store.stats.compactions == 2
            expected = store.database.as_set()
        with DurableStore(ANCESTOR, tmp_path) as store:
            assert store.stats.restore_mode == "snapshot"
            assert store.database.as_set() == expected

    def test_checkpoint_resets_wal(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path) as store:
            store.add_facts(atoms("parent(a, b)"))
            assert store.wal.record_count == 1
            nbytes = store.checkpoint()
            assert nbytes > 0
            assert store.wal.record_count == 0

    def test_compact_alias(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path) as store:
            store.add_facts(atoms("parent(a, b)"))
            store.compact()
            assert store.wal.record_count == 0


class TestMetricsAndHooks:
    def test_storage_metrics_collected(self, tmp_path):
        metrics = MetricsCollector()
        with DurableStore(ANCESTOR, tmp_path, metrics=metrics) as store:
            store.add_facts(atoms("parent(a, b)"))
            store.checkpoint()
        counters = metrics.counters
        assert counters["storage_bytes_written"] > 0
        assert counters["storage_fsyncs"] >= 2
        assert counters["wal_records_appended"] == 1
        assert counters["snapshot_writes"] == 1
        assert "wal_append" in metrics.phases
        assert "snapshot_write" in metrics.phases

    def test_replay_metrics_on_reopen(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path) as store:
            store.add_facts(atoms("parent(a, b)"))
        metrics = MetricsCollector()
        with DurableStore(ANCESTOR, tmp_path, metrics=metrics):
            pass
        assert metrics.counters["wal_records_replayed"] == 1
        assert "wal_replay" in metrics.phases

    def test_trace_records_storage_events(self, tmp_path):
        recorder = TraceRecorder()
        with DurableStore(ANCESTOR, tmp_path, hooks=recorder) as store:
            store.add_facts(atoms("parent(a, b)"))
            store.checkpoint()
        assert recorder.count("wal_append") == 1
        assert recorder.count("snapshot_write") == 1

    def test_composite_hooks_fan_out_storage_events(self, tmp_path):
        first, second = TraceRecorder(), TraceRecorder()

        class LegacyHooks:
            """An engine-hooks object predating the storage events."""

            def on_plan_built(self, plan):
                pass

            def on_layer_start(self, layer, rules):
                pass

            def on_layer_end(self, layer, new_facts):
                pass

            def on_iteration(self, iteration, new_facts):
                pass

            def on_rule_fired(self, rule, derived):
                pass

            def on_fact_derived(self, fact, rule):
                pass

        composite = compose_hooks(first, second)
        with DurableStore(
            ANCESTOR, tmp_path, hooks=compose_hooks(composite, LegacyHooks())
        ) as store:
            store.add_facts(atoms("parent(a, b)"))
        assert first.count("wal_append") == 1
        assert second.count("wal_append") == 1


class TestDatabaseApi:
    def test_unknown_predicate_is_evaluation_error(self):
        db = Database()
        with pytest.raises(EvaluationError, match="nosuch"):
            db.relation("nosuch")

    def test_discard_maintains_indexes(self):
        db = Database(atoms("e(1, 2)", "e(1, 3)", "e(2, 3)"))
        # force an index, then discard through it
        assert len(list(db.lookup("e", (0,), tuple(parse_atom("e(1, 2)").args[:1])))) == 2
        assert db.discard(parse_atom("e(1, 2)"))
        assert not db.discard(parse_atom("e(1, 2)"))
        assert list(db.lookup("e", (0,), tuple(parse_atom("e(1, 3)").args[:1]))) == [
            parse_atom("e(1, 3)").args
        ]
        assert db.count() == 2

    def test_remove_missing_raises(self):
        db = Database(atoms("e(1, 2)"))
        db.remove(parse_atom("e(1, 2)"))
        with pytest.raises(EvaluationError):
            db.remove(parse_atom("e(1, 2)"))


class TestLDLDurableSession:
    SRC = """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    """

    def test_facts_survive_restart(self, tmp_path):
        path = str(tmp_path / "db")
        with LDL(self.SRC, path=path) as db:
            db.facts("parent", [("a", "b"), ("b", "c")])
            first = db.query("? anc(a, X).")
        with LDL(self.SRC, path=path) as db:
            assert db.query("? anc(a, X).") == first
            assert db.store.stats.wal_records_replayed == 1

    def test_checkpoint_then_snapshot_restart(self, tmp_path):
        path = str(tmp_path / "db")
        with LDL(self.SRC, path=path) as db:
            db.facts("parent", [("a", "b")])
            db.checkpoint()
        with LDL(self.SRC, path=path) as db:
            assert db.store.stats.restore_mode == "snapshot"
            assert db.query("? anc(a, X).") == [{"X": "b"}]

    def test_remove_fact(self, tmp_path):
        with LDL(self.SRC, path=str(tmp_path / "db")) as db:
            db.fact("parent", "a", "b")
            db.remove("parent", "a", "b")
            assert db.query("? anc(a, X).") == []

    def test_remove_fact_in_memory_session(self):
        db = LDL(self.SRC).fact("parent", "a", "b").fact("parent", "b", "c")
        db.remove("parent", "b", "c")
        assert db.query("? anc(a, X).") == [{"X": "b"}]

    def test_magic_uses_durable_edb(self, tmp_path):
        with LDL(self.SRC, path=str(tmp_path / "db")) as db:
            db.facts("parent", [("a", "b"), ("b", "c")])
            assert db.query("? anc(a, X).", strategy="magic") == [
                {"X": "b"},
                {"X": "c"},
            ]

    def test_loading_rules_reopens_store(self, tmp_path):
        path = str(tmp_path / "db")
        with LDL(self.SRC, path=path) as db:
            db.fact("parent", "a", "b")
            db.load("grandparent(X, Z) <- parent(X, Y), parent(Y, Z).")
            db.fact("parent", "b", "c")
            assert db.query("? grandparent(a, X).") == [{"X": "c"}]
        with LDL(self.SRC, path=path) as db:
            # old rules: persisted EDB intact, grandparent gone
            assert db.query("? anc(a, X).") == [{"X": "b"}, {"X": "c"}]

    def test_checkpoint_requires_durable_session(self):
        with pytest.raises(EvaluationError):
            LDL(self.SRC).checkpoint()

    def test_buffered_facts_flow_into_store(self, tmp_path):
        db = LDL(self.SRC)
        db.fact("parent", "a", "b")
        db._path = str(tmp_path / "db")
        db._open_store()
        assert db.query("? anc(a, X).") == [{"X": "b"}]
        db.close()


class TestCliDurable:
    PROGRAM = "anc(X, Y) <- parent(X, Y). anc(X, Y) <- parent(X, Z), anc(Z, Y).\n"

    def _write_program(self, tmp_path):
        program = tmp_path / "prog.ldl"
        program.write_text(self.PROGRAM + "parent(a, b). parent(b, c).\n")
        return str(program)

    def test_db_flag_round_trip(self, tmp_path):
        program = self._write_program(tmp_path)
        dbdir = str(tmp_path / "db")
        out = io.StringIO()
        assert cli_run([program, "--db", dbdir, "-q", "? anc(a, X)."], out=out) == 0
        assert "cold start" in out.getvalue()
        assert os.path.exists(os.path.join(dbdir, "snapshot.jsonl"))
        out = io.StringIO()
        assert cli_run([program, "--db", dbdir, "-q", "? anc(a, X)."], out=out) == 0
        text = out.getvalue()
        assert "snapshot start" in text
        assert "X = 'c'" in text

    def test_repl_save_and_compact(self, tmp_path):
        program = self._write_program(tmp_path)
        dbdir = str(tmp_path / "db")
        out = io.StringIO()
        stdin = io.StringIO("parent(c, d).\n:save\n.compact\n:quit\n")
        assert cli_run([program, "--db", dbdir, "--repl"], out=out, stdin=stdin) == 0
        assert out.getvalue().count("% checkpoint:") == 2
        out = io.StringIO()
        assert cli_run(
            [program, "--db", dbdir, "-q", "? anc(a, X)."], out=out
        ) == 0
        assert "X = 'd'" in out.getvalue()

    def test_repl_save_without_db(self, tmp_path):
        program = self._write_program(tmp_path)
        out = io.StringIO()
        stdin = io.StringIO(":save\n:quit\n")
        assert cli_run([program, "--repl"], out=out, stdin=stdin) == 0
        assert "no durable store" in out.getvalue()


class TestWalTornTailThroughStore:
    def test_torn_tail_recovers_prefix(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path) as store:
            store.add_facts(atoms("parent(a, b)"))
            store.add_facts(atoms("parent(b, c)"))
            wal_path = store.wal_path
        # crash mid-append: chop bytes off the second record
        with open(wal_path, "r+b") as fh:
            fh.truncate(os.path.getsize(wal_path) - 2)
        with DurableStore(ANCESTOR, tmp_path) as store:
            assert store.stats.wal_truncated_bytes > 0
            assert store.stats.wal_records_replayed == 1
            assert parse_atom("anc(a, b)") in store.database
            assert parse_atom("anc(b, c)") not in store.database
            # the torn record is physically gone: a fresh append works
            store.add_facts(atoms("parent(b, d)"))
        log = WriteAheadLog(wal_path)
        assert log.record_count == 2
        log.close()
