"""Tests for supplementary magic sets (repro.magic.supplementary)."""

import pytest

from repro.engine import evaluate
from repro.magic import evaluate_magic, magic_rewrite, supplementary_rewrite
from repro.parser import parse_program, parse_query, parse_rules

ANCESTOR = """
parent(a, b). parent(b, c). parent(c, d). parent(e, f).
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
"""

YOUNG = """
p(adam, john). p(adam, mary). p(eve, john). p(eve, mary). p(john, bob).
siblings(john, mary). siblings(mary, john).
a(X, Y) <- p(X, Y).
a(X, Y) <- a(X, Z), a(Z, Y).
sg(X, Y) <- siblings(X, Y).
sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
has_desc(X) <- a(X, _).
young(X, <Y>) <- sg(X, Y), ~has_desc(X).
"""


def equivalent(src, query_text):
    program, _ = parse_program(src)
    query = parse_query(query_text)
    sup = evaluate_magic(program, query, rewrite=supplementary_rewrite)
    gms = evaluate_magic(program, query, rewrite=magic_rewrite)
    full = evaluate(program).answer_atoms(query)
    assert sup.answer_atoms() == full
    assert gms.answer_atoms() == full
    return sup, gms


class TestStructure:
    def test_sup_chain_generated(self):
        program = parse_rules(ANCESTOR)
        mp = supplementary_rewrite(program, parse_query("? anc(a, X)."))
        sup_heads = [
            r.head.pred for r in mp.magic_rules if "sup_" in r.head.pred
        ]
        assert sup_heads  # chain predicates exist
        # each modified rule's body is a single supplementary literal
        for rule in mp.modified_rules:
            assert len(rule.body) == 1
            assert "sup_" in rule.body[0].atom.pred

    def test_magic_rules_read_supplementary_state(self):
        program = parse_rules(ANCESTOR)
        mp = supplementary_rewrite(program, parse_query("? anc(a, X)."))
        for rule in mp.magic_rules:
            if rule.head.pred.startswith("m_"):
                [lit] = rule.body
                assert "sup_" in lit.atom.pred or lit.atom.pred.startswith("m_")

    def test_grouping_rule_deferred(self):
        program, _ = parse_program(YOUNG)
        mp = supplementary_rewrite(program, parse_query("? young(mary, S)."))
        assert any(r.is_grouping() for r in mp.deferred_rules)

    def test_negative_literal_survives_to_final_rule(self):
        program, _ = parse_program(YOUNG)
        mp = supplementary_rewrite(program, parse_query("? young(mary, S)."))
        [deferred] = [r for r in mp.deferred_rules if r.is_grouping()]
        assert any(lit.negative for lit in deferred.body)
        # and the chain kept the negated literal's variable available
        [sup_lit] = [lit for lit in deferred.body if lit.positive]
        assert "X" in sup_lit.atom.variables()


class TestEquivalence:
    @pytest.mark.parametrize(
        "query",
        ["? anc(a, X).", "? anc(X, d).", "? anc(a, d).", "? anc(X, Y)."],
    )
    def test_ancestor(self, query):
        equivalent(ANCESTOR, query)

    @pytest.mark.parametrize(
        "query",
        [
            "? young(mary, S).",
            "? young(john, S).",
            "? young(X, S).",
            "? sg(john, Y).",
        ],
    )
    def test_young(self, query):
        equivalent(YOUNG, query)

    def test_negation_on_edb(self):
        src = """
        b(1). b(2). bad(1).
        ok(X) <- b(X), ~bad(X).
        good(X) <- ok(X).
        """
        equivalent(src, "? good(X).")

    def test_multi_literal_rule_projection(self):
        # long body: the chain must project without losing join vars
        src = """
        e1(1, 2). e2(2, 3). e3(3, 4). e4(4, 5).
        path(A, E) <- e1(A, B), e2(B, C), e3(C, D), e4(D, E).
        """
        sup, _ = equivalent(src, "? path(1, X).")
        assert sup.answer_atoms()


class TestSharing:
    def test_supplementary_avoids_prefix_recomputation(self):
        # with two derived literals in one body, GMS re-evaluates the
        # prefix in each magic rule; supplementary shares it.
        src = """
        e(1, 2). e(2, 3). e(3, 4).
        t(X, Y) <- e(X, Y).
        t(X, Y) <- t(X, Z), t(Z, Y).
        """
        program = parse_rules(src)
        query = parse_query("? t(1, X).")
        sup = evaluate_magic(program, query, rewrite=supplementary_rewrite)
        gms = evaluate_magic(program, query, rewrite=magic_rewrite)
        assert sup.answer_atoms() == gms.answer_atoms()
        # both must terminate with sane stats; the firing counts are
        # reported by benchmark E13 rather than asserted here.
        assert sup.stats.saturation.facts_derived > 0
