"""Tests for the executor package (repro.engine.exec).

Covers the batch operators directly (indexed hash join, anti-join
negation, override-source joins, batch builtins, batch group-by edge
cases), the executor selection machinery, and fixed-program
batch-vs-tuple differentials (the random-program differential lives in
test_prop_engine.py).
"""

import os

import pytest

from repro.engine.binding import EMPTY_BINDING
from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.exec import (
    EXECUTORS,
    default_executor,
    derive_facts,
    enumerate_bindings,
    group_bindings,
    run_plan_batch,
    run_plan_tuple,
    set_default_executor,
    set_specialization,
    specialization,
)
from repro.engine.grouping import apply_grouping_rule
from repro.engine.plan import compile_rule
from repro.errors import EvaluationError
from repro.observe import MetricsCollector
from repro.parser import parse_atom, parse_rule
from repro.terms.term import Const

from tests.helpers import facts_of, run


def db_of(*atom_srcs):
    return Database(parse_atom(src) for src in atom_srcs)


def _normalized(bindings):
    return sorted(
        (sorted(b.materialize().items()) for b in bindings),
        key=repr,
    )


def bindings_of(db, rule, **kwargs):
    batch = _normalized(run_plan_batch(db, compile_rule(rule), **kwargs))
    tup = _normalized(run_plan_tuple(db, compile_rule(rule), **kwargs))
    assert batch == tup
    return batch


class TestBatchJoin:
    def test_two_way_join(self):
        db = db_of("e(1, 2)", "e(2, 3)", "e(1, 3)")
        rule = parse_rule("p(X, Z) <- e(X, Y), e(Y, Z).")
        rows = bindings_of(db, rule)
        assert rows == [
            [("X", Const(1)), ("Y", Const(2)), ("Z", Const(3))]
        ]

    def test_empty_batch_short_circuits(self):
        db = db_of("q(1)")
        rule = parse_rule("p(X) <- r(X), q(X).")
        assert bindings_of(db, rule) == []

    def test_fully_bound_membership_filter(self):
        db = db_of("e(1, 2)", "q(1)", "q(2)")
        rule = parse_rule("p(X, Y) <- e(X, Y), q(X), q(Y).")
        assert len(bindings_of(db, rule)) == 1

    def test_repeated_variable_residual(self):
        db = db_of("e(1, 1)", "e(1, 2)", "e(2, 2)")
        rule = parse_rule("p(X) <- e(X, X).")
        assert len(bindings_of(db, rule)) == 2

    def test_duplicate_multiplicity_matches_tuple(self):
        # two distinct derivations of the same binding must survive in
        # both executors (rule-firing counts compare like with like)
        db = db_of("a(1)", "b(1)", "c(1)")
        rule = parse_rule("p(X) <- a(X), b(X).")
        plan = compile_rule(rule)
        assert len(run_plan_batch(db, plan)) == len(
            list(run_plan_tuple(db, plan))
        )


class TestAntiJoinNegation:
    def test_negation_filters_batch(self):
        db = db_of("e(1)", "e(2)", "e(3)", "bad(2)")
        rule = parse_rule("p(X) <- e(X), ~bad(X).")
        rows = bindings_of(db, rule)
        assert [dict(r)["X"] for r in rows] == [Const(1), Const(3)]

    def test_negation_against_negation_db(self):
        # the anti-join must respect an alternative interpretation
        db = db_of("e(1)", "e(2)")
        assumed = db_of("bad(1)")
        rule = parse_rule("p(X) <- e(X), ~bad(X).")
        rows = bindings_of(db, rule, negation_db=assumed)
        assert [dict(r)["X"] for r in rows] == [Const(2)]

    def test_negated_builtin_is_closed_test(self):
        db = db_of("e(1)", "e(2)")
        rule = parse_rule("p(X) <- e(X), ~X = 1.")
        rows = bindings_of(db, rule)
        assert [dict(r)["X"] for r in rows] == [Const(2)]

    def test_all_negated_batch_empties(self):
        db = db_of("e(1)", "bad(1)")
        rule = parse_rule("p(X) <- e(X), ~bad(X).")
        assert bindings_of(db, rule) == []


class TestOverrideSource:
    def test_delta_seed_restricts_first_step(self):
        db = db_of("e(1, 2)", "e(2, 3)", "t(2, 3)")
        rule = parse_rule("t(X, Y) <- e(X, Z), t(Z, Y).")
        plan = compile_rule(rule, first=1)
        delta = [(Const(2), Const(3))]
        batch = run_plan_batch(db, plan, overrides={1: delta})
        tup = list(run_plan_tuple(db, plan, overrides={1: delta}))
        assert len(batch) == len(tup) == 1
        assert batch[0].materialize() == tup[0].materialize()

    def test_probed_delta_join(self):
        # the delta occurrence appears second, so the batch probes it
        db = db_of("e(1, 2)", "e(2, 3)")
        rule = parse_rule("p(X, Y) <- e(X, Z), d(Z, Y).")
        plan = compile_rule(rule)
        delta = [(Const(2), Const(9)), (Const(7), Const(8))]
        batch = run_plan_batch(db, plan, overrides={plan.order[1]: delta})
        tup = list(run_plan_tuple(db, plan, overrides={plan.order[1]: delta}))
        assert len(batch) == len(tup) == 1

    def test_generator_source_consumed_once(self):
        # an override may be a one-shot iterable; the batch executor
        # must materialize it before fanning over the batch
        db = db_of("e(1)", "e(2)")
        rule = parse_rule("p(X, Y) <- e(X), d(Y).")
        plan = compile_rule(rule)
        idx = plan.order[1] if plan.steps[1].literal.atom.pred == "d" else plan.order[0]
        batch = run_plan_batch(
            db, plan, overrides={idx: iter([(Const(5),), (Const(6),)])}
        )
        assert len(batch) == 4


class TestBatchBuiltins:
    def test_arithmetic_generate(self):
        db = db_of("e(1)", "e(2)")
        rule = parse_rule("p(X, Y) <- e(X), Y = X + 1.")
        rows = bindings_of(db, rule)
        assert len(rows) == 2

    def test_comparison_filter(self):
        db = db_of("e(1)", "e(2)", "e(3)")
        rule = parse_rule("p(X) <- e(X), X > 1.")
        assert len(bindings_of(db, rule)) == 2


class TestBatchGroupBy:
    def test_empty_batch_yields_no_groups(self):
        groups = group_bindings([], "X", [], lambda: "r")
        assert groups == {}

    def test_all_duplicate_batch_collapses(self):
        bindings = [{"X": Const(1), "K": Const(0)}] * 5
        groups = group_bindings(
            bindings, "X", [(0, parse_atom("k(K)").args[0])], lambda: "r"
        )
        assert len(groups) == 1
        ((key, values),) = groups.items()
        assert values == {Const(1)}

    def test_unbound_group_var_raises(self):
        with pytest.raises(EvaluationError, match="unbound by body"):
            group_bindings([{"Y": Const(1)}], "X", [], lambda: "r(X)")

    def test_grouping_rule_matches_tuple_executor(self):
        src = """
        item(a, 1). item(a, 2). item(b, 3).
        bag(K, <V>) <- item(K, V).
        """
        batch = run(src, executor="batch")
        tup = run(src, executor="tuple")
        assert facts_of(batch, "bag") == facts_of(tup, "bag")
        assert len(facts_of(batch, "bag")) == 2

    def test_grouping_rule_empty_body_is_no_facts(self):
        rule = parse_rule("bag(K, <V>) <- item(K, V).")
        assert list(apply_grouping_rule(rule, Database())) == []


class TestExecutorSelection:
    def test_known_executors(self):
        assert set(EXECUTORS) == {"batch", "tuple"}

    def test_default_is_batch(self):
        # REPRO_EXECUTOR overrides the process default (the CI
        # differential job runs the whole suite under "tuple").
        expected = os.environ.get("REPRO_EXECUTOR", "batch")
        assert default_executor() == expected

    def test_set_default_round_trip(self):
        previous = default_executor()
        try:
            set_default_executor("tuple")
            assert default_executor() == "tuple"
        finally:
            set_default_executor(previous)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            set_default_executor("vectorized")
        db = db_of("e(1)")
        plan = compile_rule(parse_rule("p(X) <- e(X)."))
        with pytest.raises(ValueError, match="unknown executor"):
            enumerate_bindings(db, plan, executor="vectorized")

    def test_context_executor_flows_through(self):
        ctx = EvalContext(Database(), executor="tuple")
        assert ctx.executor == "tuple"

    def test_evaluate_executor_knob(self):
        src = "e(1). e(2). p(X) <- e(X)."
        assert facts_of(run(src, executor="batch"), "p") == facts_of(
            run(src, executor="tuple"), "p"
        )


class TestDeriveFacts:
    def test_head_instantiation(self):
        db = db_of("e(1)", "e(2)")
        plan = compile_rule(parse_rule("p(X) <- e(X)."))
        facts = derive_facts(db, plan)
        assert sorted(str(f) for f in facts) == sorted(
            str(parse_atom(s)) for s in ("p(1)", "p(2)")
        )

    def test_batch_metrics_recorded(self):
        db = db_of("e(1)", "e(2)", "f(1)")
        plan = compile_rule(parse_rule("p(X) <- e(X), f(X)."))
        metrics = MetricsCollector()
        derive_facts(db, plan, executor="batch", metrics=metrics)
        assert metrics.counters["batch_steps"] == 2
        assert metrics.counters["batch_peak"] >= 1

    def test_empty_plan_yields_seed_binding(self):
        # a fact rule has no steps: exactly one (empty) binding
        plan = compile_rule(parse_rule("p(1)."))
        assert len(run_plan_batch(Database(), plan)) == 1
        assert run_plan_batch(Database(), plan)[0] is not None
        assert EMPTY_BINDING.materialize() == {}


class TestFixedProgramDifferentials:
    TC = """
    e(1, 2). e(2, 3). e(3, 4). e(2, 4).
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
    """

    def test_transitive_closure(self):
        assert facts_of(run(self.TC, executor="batch"), "t") == facts_of(
            run(self.TC, executor="tuple"), "t"
        )

    def test_negation_program(self):
        src = """
        node(1). node(2). node(3). edge(1, 2).
        isolated(X) <- node(X), ~edge(X, Y), ~edge(Y, X).
        """
        # safety requires Y bound; use a closed form instead
        src = """
        node(1). node(2). node(3). edge(1, 2).
        linked(X) <- edge(X, Y).
        linked(Y) <- edge(X, Y).
        isolated(X) <- node(X), ~linked(X).
        """
        assert facts_of(run(src, executor="batch"), "isolated") == facts_of(
            run(src, executor="tuple"), "isolated"
        ) == {"isolated(3)"}


class TestSpecializationToggle:
    """Plan specialization is an optimization layer over the batch
    executor: toggling it must never change an answer set."""

    def test_default_respects_env(self):
        expected = os.environ.get("REPRO_SPECIALIZE", "on")
        assert specialization() == expected

    def test_set_round_trip(self):
        previous = specialization()
        try:
            set_specialization("off")
            assert specialization() == "off"
        finally:
            set_specialization(previous)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="specialization"):
            set_specialization("maybe")

    def _answers(self, src, pred):
        previous = specialization()
        try:
            set_specialization("on")
            on = facts_of(run(src, executor="batch"), pred)
            set_specialization("off")
            off = facts_of(run(src, executor="batch"), pred)
        finally:
            set_specialization(previous)
        assert on == off
        return on

    def test_transitive_closure_equivalent(self):
        assert self._answers(TestFixedProgramDifferentials.TC, "t")

    def test_builtins_equivalent(self):
        src = """
        e(1, 2). e(2, 3). e(3, 1).
        p(X, S) <- e(X, Y), e(Y, Z), X != Z, S = X + Z.
        """
        assert self._answers(src, "p") == {"p(1, 4)", "p(2, 3)", "p(3, 5)"}

    def test_negation_equivalent(self):
        src = """
        node(1). node(2). node(3). edge(1, 2).
        linked(X) <- edge(X, Y).
        linked(Y) <- edge(X, Y).
        isolated(X) <- node(X), ~linked(X).
        """
        assert self._answers(src, "isolated") == {"isolated(3)"}
