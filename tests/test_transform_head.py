"""Tests for LDL1.5 complex head terms (paper §4.2)."""

import pytest

from repro.engine import evaluate
from repro.parser import parse_rules, parse_term
from repro.program.wellformed import check_program
from repro.transform import compile_head_terms, compile_ldl15
from repro.terms.pretty import format_atom

TEACHING = """
r(t1, s1, c1, mon). r(t1, s1, c1, wed). r(t1, s2, c2, tue).
r(t2, s1, c3, mon).
"""


def run_compiled(src, pred, alternative=False):
    program = compile_head_terms(parse_rules(src), alternative=alternative)
    check_program(program)
    result = evaluate(program)
    return {format_atom(a) for a in result.database.atoms(pred)}


class TestValidHeadTermsParse:
    # §4.2.1: "Some valid head terms"
    EXAMPLES = [
        "X",
        "<X>",
        "(X, Y)",
        "<g(X, Y)>",
        "(X, <X>, <Y>)",
        "(X, <h(Y, <Z>)>, (Y, <W>))",
        "(X, Y, Z, <W>)",
    ]

    @pytest.mark.parametrize("src", EXAMPLES)
    def test_parses(self, src):
        parse_term(src)


class TestDistribution:
    def test_teacher_students_days(self):
        # (T, <S>, <D>) from §4.2.1
        facts = run_compiled(
            TEACHING + "out(T, <S>, <D>) <- r(T, S, C, D).", "out"
        )
        assert facts == {
            "out(t1, {s1, s2}, {mon, tue, wed})",
            "out(t2, {s1}, {mon})",
        }

    def test_distribution_with_plain_args_kept(self):
        facts = run_compiled(
            "e(a, 1, x). e(a, 2, y). out(K, <N>, <V>) <- e(K, N, V).", "out"
        )
        assert facts == {"out(a, {1, 2}, {x, y})"}


class TestGroupingTransformation:
    def test_nested_grouping_teacher_example(self):
        # (T, <h(S, <D>)>): "a set of days in which the student takes
        # some class (not necessarily with this teacher)"
        facts = run_compiled(
            TEACHING + "out(T, <h(S, <D>)>) <- r(T, S, C, D).", "out"
        )
        assert facts == {
            "out(t1, {h(s1, {mon, wed}), h(s2, {tue})})",
            # s1's day set includes wed even under t2
            "out(t2, {h(s1, {mon, wed})})",
        }

    def test_tuple_head_per_teacher_student(self):
        # ((T, S), <(C, <D>)>): per (teacher, student), classes with the
        # days each class is taught by anyone.
        facts = run_compiled(
            TEACHING + "out((T, S), <(C, <D>)>) <- r(T, S, C, D).", "out"
        )
        assert facts == {
            "out((t1, s1), {(c1, {mon, wed})})",
            "out((t1, s2), {(c2, {tue})})",
            "out((t2, s1), {(c3, {mon})})",
        }

    def test_grouped_constant(self):
        facts = run_compiled("b(1). b(2). out(<c>) <- b(X).", "out")
        assert facts == {"out({c})"}

    def test_grouped_complex_term_without_nesting(self):
        facts = run_compiled(
            "e(1, a). e(2, b). out(<f(X, Y)>) <- e(X, Y).", "out"
        )
        assert facts == {"out({f(1, a), f(2, b)})"}

    def test_base_rules_untouched(self):
        program = parse_rules("g(K, <V>) <- e(K, V). e(a, 1).")
        assert compile_head_terms(program) == program


class TestAlternativeSemantics:
    def test_alternative_keys_include_outer_vars(self):
        # (ii)': under T's grouping, S's day-set is restricted to this T.
        default = run_compiled(
            TEACHING + "out(T, <h(S, <D>)>) <- r(T, S, C, D).", "out"
        )
        alt = run_compiled(
            TEACHING + "out(T, <h(S, <D>)>) <- r(T, S, C, D).",
            "out",
            alternative=True,
        )
        assert default != alt
        # t2 now sees only its own day with s1
        assert "out(t2, {h(s1, {mon})})" in alt

    def test_alternative_same_when_no_outer_vars(self):
        src = "e(1, a). e(2, a). out(<f(X)>) <- e(X, Y)."
        assert run_compiled(src, "out") == run_compiled(
            src, "out", alternative=True
        )


class TestNesting:
    def test_ungrouped_complex_arg_with_inner_group(self):
        # p(X, g(Y, <D>)): one g-fact per (X, Y) with the grouped days.
        facts = run_compiled(
            "e(a, u, 1). e(a, u, 2). e(b, v, 3). out(X, g(Y, <D>)) <- e(X, Y, D).",
            "out",
        )
        assert facts == {
            "out(a, g(u, {1, 2}))",
            "out(b, g(v, {3}))",
        }


class TestFullPipeline:
    def test_compile_ldl15_head_and_body(self):
        program = parse_rules(
            """
            raw(k1, {1, 2}). raw(k2, {3}).
            collected(<f(K, X)>) <- raw(K, <X>).
            """
        )
        compiled = compile_ldl15(program)
        check_program(compiled)
        result = evaluate(compiled)
        facts = {format_atom(a) for a in result.database.atoms("collected")}
        assert facts == {"collected({f(k1, 1), f(k1, 2), f(k2, 3)})"}
