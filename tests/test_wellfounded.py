"""Tests for the well-founded semantics (repro.semantics.wellfounded).

The paper's §7 open problem — admissibility may be too restrictive —
is answered here: non-stratifiable negation gets the three-valued
well-founded model, which collapses to the paper's standard model on
admissible programs.
"""

import pytest

from repro.engine import evaluate
from repro.errors import EvaluationError
from repro.parser import parse_atom, parse_program, parse_rules
from repro.semantics.wellfounded import wellfounded
from repro.workloads.generator import GeneratorConfig, random_program

WIN_MOVE = """
win(X) <- move(X, Y), ~win(Y).
"""


def game(*edges):
    facts = " ".join(f"move({a}, {b})." for a, b in edges)
    program, _ = parse_program(facts + WIN_MOVE)
    return program


class TestWinMoveGame:
    def test_chain_positions(self):
        # a -> b -> c: c cannot move (loses), so b wins, so a loses.
        model = wellfounded(game(("a", "b"), ("b", "c")))
        assert model.value_of(parse_atom("win(b)")) == "true"
        assert model.value_of(parse_atom("win(a)")) == "false"
        assert model.value_of(parse_atom("win(c)")) == "false"
        assert model.is_total()

    def test_two_cycle_is_a_draw(self):
        model = wellfounded(game(("x", "y"), ("y", "x")))
        assert model.value_of(parse_atom("win(x)")) == "undefined"
        assert model.value_of(parse_atom("win(y)")) == "undefined"
        assert not model.is_total()

    def test_odd_cycle_undefined(self):
        model = wellfounded(game(("p", "q"), ("q", "r"), ("r", "p")))
        for pos in ("p", "q", "r"):
            assert model.value_of(parse_atom(f"win({pos})")) == "undefined"

    def test_escape_from_cycle_wins(self):
        # x <-> y, plus x -> z where z is stuck: x can force a win.
        model = wellfounded(game(("x", "y"), ("y", "x"), ("x", "z")))
        assert model.value_of(parse_atom("win(x)")) == "true"
        # y's only move reaches the winning x: y loses.
        assert model.value_of(parse_atom("win(y)")) == "false"

    def test_inadmissible_program_accepted(self):
        # the whole point: win/move is not stratifiable.
        from repro.program.dependency import is_admissible

        program = game(("a", "b"))
        assert not is_admissible(program)
        assert wellfounded(program).is_total()


class TestAgreementWithStandardModel:
    def test_stratified_program_total_and_equal(self):
        program = parse_rules(
            """
            b(1). b(2). b(3). r(1).
            p(X) <- b(X), ~r(X).
            q(X) <- b(X), ~p(X).
            """
        )
        model = wellfounded(program)
        assert model.is_total()
        standard = evaluate(program).database.as_set()
        assert model.true == standard

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_admissible_programs_agree(self, seed):
        generated = random_program(
            seed, GeneratorConfig(grouping_probability=0.0)
        )
        model = wellfounded(generated.program, edb=generated.edb)
        assert model.is_total()
        standard = evaluate(
            generated.program, edb=generated.edb
        ).database.as_set()
        assert model.true == standard


class TestRestrictions:
    def test_grouping_rejected(self):
        program = parse_rules("g(K, <V>) <- e(K, V). e(a, 1).")
        with pytest.raises(EvaluationError):
            wellfounded(program)

    def test_paper_even_program_needs_finite_domain(self):
        # the §1 even/int program has an infinite universe; its finite
        # restriction gets a total well-founded model.
        program = parse_rules(
            """
            num(0). num(1). num(2). num(3).
            succ(0, 1). succ(1, 2). succ(2, 3).
            even(0).
            even(Y) <- succ(X, Y), ~even(X).
            """
        )
        model = wellfounded(program)
        assert model.is_total()
        assert model.value_of(parse_atom("even(2)")) == "true"
        assert model.value_of(parse_atom("even(1)")) == "false"
        assert model.value_of(parse_atom("even(3)")) == "false"
