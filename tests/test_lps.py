"""Tests for LPS, its interpreter, and the Theorem-3 translation (§5)."""

import pytest

from repro.engine import evaluate
from repro.errors import EvaluationError
from repro.lps import (
    LPSProgram,
    LPSRule,
    Quantifier,
    evaluate_lps,
    evaluate_translated,
    lps_set_facts,
    translate,
)
from repro.parser import parse_atom, parse_rules
from repro.program.rule import Atom, Literal
from repro.terms.pretty import format_atom
from repro.terms.term import Var, mkset, Const
from repro.terms.universe import set_depth


def disj_rule():
    # disj(X,Y) <- (forall x in X)(forall y in Y) x != y
    return LPSRule(
        parse_atom("disj(X, Y)"),
        [Quantifier("Ex", "X"), Quantifier("Ey", "Y")],
        [Literal(Atom("!=", (Var("Ex"), Var("Ey"))))],
    )


def subset_rule():
    # subset(X,Y) <- (forall x in X) member(x, Y)
    return LPSRule(
        parse_atom("subs(X, Y)"),
        [Quantifier("Ex", "X")],
        [Literal(Atom("member", (Var("Ex"), Var("Y"))))],
        set_typed={"Y"},
    )


FACTS = [
    parse_atom("s({1, 2})"),
    parse_atom("s({2, 3})"),
    parse_atom("s({3})"),
    parse_atom("s({})"),
]


def extension(db_or_result, pred):
    db = getattr(db_or_result, "database", db_or_result)
    return {format_atom(a) for a in db.atoms(pred)}


class TestSyntax:
    def test_element_var_in_head_rejected(self):
        with pytest.raises(ValueError):
            LPSRule(
                parse_atom("p(Ex)"),
                [Quantifier("Ex", "X")],
            )

    def test_duplicate_element_var_rejected(self):
        with pytest.raises(ValueError):
            LPSRule(
                parse_atom("p(X, Y)"),
                [Quantifier("E", "X"), Quantifier("E", "Y")],
            )

    def test_free_variables(self):
        rule = subset_rule()
        assert rule.free_variables() == {"X", "Y"}
        assert rule.typed_set_variables() == ("X", "Y")


class TestInterpreter:
    def test_disj_paper_example(self):
        db = evaluate_lps(LPSProgram([disj_rule()]), FACTS)
        disj = extension(db, "disj")
        assert "disj({1, 2}, {3})" in disj
        assert "disj({1, 2}, {2, 3})" not in disj
        # the empty set is disjoint from everything (vacuous forall)
        assert "disj({}, {1, 2})" in disj
        assert "disj({}, {})" in disj

    def test_subset_paper_example(self):
        db = evaluate_lps(LPSProgram([subset_rule()]), FACTS)
        subs = extension(db, "subs")
        assert "subs({3}, {2, 3})" in subs
        assert "subs({1, 2}, {2, 3})" not in subs
        assert "subs({}, {3})" in subs
        assert "subs({2, 3}, {2, 3})" in subs

    def test_derived_predicates_chain(self):
        # q(X) <- (forall x in X) p(x);  r(X) <- [q(X)]
        q_rule = LPSRule(
            parse_atom("q(X)"),
            [Quantifier("Ex", "X")],
            [Literal(Atom("p", (Var("Ex"),)))],
        )
        r_rule = LPSRule(
            parse_atom("r(X)"),
            [],
            [Literal(Atom("q", (Var("X"),)))],
            set_typed={"X"},
        )
        db = evaluate_lps(
            LPSProgram([q_rule, r_rule]),
            [parse_atom("p(1)"), parse_atom("p(2)"), parse_atom("d({1, 2})"),
             parse_atom("d({1, 3})")],
        )
        assert extension(db, "q") == {"q({1, 2})", "q({})", "q({1})", "q({2})"} \
            or "q({1, 2})" in extension(db, "q")
        assert "r({1, 2})" in extension(db, "r")
        assert "r({1, 3})" not in extension(db, "r")

    def test_negated_derived_literal_rejected(self):
        rule = LPSRule(
            parse_atom("p(X)"),
            [Quantifier("Ex", "X")],
            [Literal(Atom("q", (Var("Ex"),)), positive=False)],
        )
        with pytest.raises(EvaluationError):
            evaluate_lps(LPSProgram([rule]), FACTS)


class TestTranslation:
    def test_translated_program_is_valid_ldl1(self):
        from repro.program.wellformed import check_program

        program = translate(LPSProgram([disj_rule(), subset_rule()]))
        check_program(program)

    def test_disj_translation_equivalent(self):
        direct = evaluate_lps(LPSProgram([disj_rule()]), FACTS)
        translated = evaluate_translated(LPSProgram([disj_rule()]), FACTS)
        assert extension(direct, "disj") == extension(translated, "disj")

    def test_subset_translation_equivalent(self):
        direct = evaluate_lps(LPSProgram([subset_rule()]), FACTS)
        translated = evaluate_translated(LPSProgram([subset_rule()]), FACTS)
        assert extension(direct, "subs") == extension(translated, "subs")

    def test_combined_program_equivalent(self):
        program = LPSProgram([disj_rule(), subset_rule()])
        direct = evaluate_lps(program, FACTS)
        translated = evaluate_translated(program, FACTS)
        for pred in ("disj", "subs"):
            assert extension(direct, pred) == extension(translated, pred)

    def test_extra_sets_extend_domain(self):
        extra = [mkset([Const(7)])]
        direct = evaluate_lps(LPSProgram([disj_rule()]), FACTS, extra_sets=extra)
        translated = evaluate_translated(
            LPSProgram([disj_rule()]), FACTS, extra_sets=extra
        )
        assert "disj({3}, {7})" in extension(direct, "disj")
        assert extension(direct, "disj") == extension(translated, "disj")

    def test_lps_set_facts(self):
        facts = lps_set_facts(FACTS)
        assert parse_atom("lps_set({1, 2})") in facts
        assert parse_atom("lps_set({})") in facts


class TestProposition:
    def test_ldl1_richer_models_than_lps(self):
        # Section 5 Proposition: the LDL1 program below has a unique
        # minimal model containing w({{1}}), a set of sets — outside
        # the D ∪ P(D) domain any LPS model is based on.
        program = parse_rules(
            """
            q(1).
            p(<X>) <- q(X).
            w(<X>) <- p(X).
            """
        )
        result = evaluate(program)
        w_facts = list(result.database.atoms("w"))
        assert len(w_facts) == 1
        nested = w_facts[0].args[0]
        assert set_depth(nested) == 2  # {{1}}: deeper than P(D) allows


class TestLpsParser:
    def test_paper_examples_parse(self):
        from repro.lps import parse_lps

        program = parse_lps(
            """
            disj(X, Y) <- forall Ex in X, forall Ey in Y | Ex != Ey.
            subs(X, Y) <- set Y, forall Ex in X where member(Ex, Y).
            """
        )
        assert len(program) == 2
        disj, subs = program.rules
        assert len(disj.quantifiers) == 2
        assert subs.set_typed == frozenset({"Y"})

    def test_parsed_program_matches_handbuilt(self):
        from repro.lps import parse_lps

        parsed = parse_lps(
            "disj(X, Y) <- forall Ex in X, forall Ey in Y | Ex != Ey."
        )
        direct_parsed = evaluate_lps(parsed, FACTS)
        direct_built = evaluate_lps(LPSProgram([disj_rule()]), FACTS)
        assert extension(direct_parsed, "disj") == extension(
            direct_built, "disj"
        )

    def test_facts_and_plain_rules(self):
        from repro.lps import parse_lps

        program = parse_lps("base(1). derived(X) <- base(X).")
        db = evaluate_lps(program, [])
        assert extension(db, "derived") == {"derived(1)"}

    def test_missing_in_keyword(self):
        from repro.errors import ParseError
        from repro.lps import parse_lps

        with pytest.raises(ParseError):
            parse_lps("p(X) <- forall Ex of X | member(Ex, X).")

    def test_parsed_translation_roundtrip(self):
        from repro.lps import parse_lps

        program = parse_lps(
            "subs(X, Y) <- set Y, forall Ex in X where member(Ex, Y)."
        )
        direct = evaluate_lps(program, FACTS)
        translated = evaluate_translated(program, FACTS)
        assert extension(direct, "subs") == extension(translated, "subs")
