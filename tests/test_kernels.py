"""Tests for the vector-kernel layer (repro.engine.exec.kernels).

Unit tests exercise each whole-column kernel on the edge shapes the
generated code can feed it (empty columns, all-filtered masks,
duplicate join keys, lanes read after a swap-remove discard), and a
four-way Hypothesis differential holds the vector lane to the exact
model of the specialized, batch, and tuple executors on random
admissible programs.
"""

import operator

import pytest
from hypothesis import given, settings

from repro.engine import evaluate
from repro.engine.exec import (
    derive_rows,
    kernels,
    set_vectorization,
    vectorization,
)
from repro.engine.relation import Relation, encode_args
from repro.parser import parse_rules
from repro.program.rule import Atom
from repro.terms.term import Const, SetVal, intern_term, row_id

from tests.strategies import generated_programs


def t(*values):
    return tuple(Const(v) for v in values)


def rid(value):
    return row_id(intern_term(Const(value)))


class TestScalarKernels:
    def test_number_rid_matches_interner(self):
        assert kernels.number_rid(7) == rid(7)

    def test_number_rid_distinguishes_int_from_float(self):
        # 2 == 2.0 and they hash alike, but they intern to distinct
        # constants — the memo key must keep them apart.
        assert kernels.number_rid(2) != kernels.number_rid(2.0)
        assert kernels.number_rid(2) == rid(2)
        assert kernels.number_rid(2.0) == rid(2.0)

    def test_union_rid_disjoint_parts(self):
        left = row_id(intern_term(SetVal.from_ground({Const(1), Const(2)})))
        right = row_id(intern_term(SetVal.from_ground({Const(3)})))
        whole = row_id(
            intern_term(SetVal.from_ground({Const(1), Const(2), Const(3)}))
        )
        assert kernels.union_rid(left, right) == whole
        # memoized second call
        assert kernels.union_rid(left, right) == whole

    def test_union_rid_overlap_is_false(self):
        left = row_id(intern_term(SetVal.from_ground({Const(1), Const(2)})))
        right = row_id(intern_term(SetVal.from_ground({Const(2)})))
        assert kernels.union_rid(left, right) == -1

    def test_union_rid_non_set_operand_is_false(self):
        left = row_id(intern_term(SetVal.from_ground({Const(1)})))
        assert kernels.union_rid(left, rid(5)) == -1
        assert kernels.union_rid(rid(5), left) == -1


class TestColumnKernels:
    def test_probe_buckets_empty_keys(self):
        assert kernels.probe_buckets({}.get, []) == []

    def test_probe_buckets_duplicate_keys_probe_independently(self):
        index = {1: {"a"}, 2: {"b"}}
        got = kernels.probe_buckets(index.get, [1, 2, 1, 3, 1])
        assert got == [{"a"}, {"b"}, {"a"}, None, {"a"}]

    def test_gather_and_scatter_roundtrip(self):
        from array import array

        rows = [(1, 10), (2, 20), (3, 30)]
        col = array("q")
        kernels.scatter_column(col, rows, 1)
        assert list(col) == [10, 20, 30]
        assert kernels.gather(rows, 0) == [1, 2, 3]

    def test_gather_empty(self):
        assert kernels.gather([], 0) == []

    def test_dedupe_preserves_first_occurrence_order(self):
        rows = [(2,), (1,), (2,), (3,), (1,)]
        assert kernels.dedupe_rows(rows) == [(2,), (1,), (3,)]

    def test_fresh_rows_drops_stored_and_duplicates(self):
        rowpos = {(1,): 0, (2,): 1}
        rows = [(2,), (3,), (3,), (1,), (4,)]
        assert kernels.fresh_rows(rows, rowpos) == [(3,), (4,)]

    def test_fresh_rows_empty(self):
        assert kernels.fresh_rows([], {}) == []

    def test_antijoin_keep(self):
        stored = {(1,), (3,)}
        assert kernels.antijoin_keep([(1,), (2,), (3,), (4,)], stored) == [
            (2,),
            (4,),
        ]

    def test_eq_mask_all_filtered(self):
        # a mask with no survivors must still have one entry per row
        assert kernels.eq_mask([1, 2, 3], 9) == [False, False, False]
        assert kernels.ne_mask([9, 9], 9) == [False, False]

    def test_masks_on_empty_lane(self):
        assert kernels.eq_mask([], 1) == []
        assert kernels.compare_mask(operator.lt, [], []) == []

    def test_numeric_lane_reads_interned_numbers(self):
        lane = [rid(5), rid("word"), rid(2.5)]
        assert kernels.numeric_lane(lane) == [5, None, 2.5]

    def test_compare_mask_none_marks_slow_path_rows(self):
        got = kernels.compare_mask(operator.lt, [1, None, 3], [2, 2, None])
        assert got == [True, None, None]

    def test_arith_lane(self):
        got = kernels.arith_lane(operator.add, [1, None, 3], [10, 10, None])
        assert got == [11, None, None]

    def test_materialize_rows(self):
        rows = [(rid(1),), (rid(2),)]
        from repro.engine.relation import decode_row

        assert kernels.materialize_rows(rows, decode_row) == [t(1), t(2)]


class TestLaneAfterDiscard:
    def test_lane_reflects_swap_remove(self):
        # discard swap-removes mid-lane: the last row's IDs move into
        # the hole, and a lane read afterwards must see the moved row.
        rel = Relation("p", 2)
        rel.add_all([t(1, 10), t(2, 20), t(3, 30)])
        assert rel.discard(t(2, 20))
        lane0 = list(rel.lane(0))
        lane1 = list(rel.lane(1))
        assert len(lane0) == len(lane1) == 2
        got = {(a, b) for a, b in zip(lane0, lane1)}
        assert got == {encode_args(t(1, 10)), encode_args(t(3, 30))}

    def test_lane_is_zero_copy_view(self):
        rel = Relation("p", 1)
        rel.add(t(1))
        view = rel.lane(0)
        # the relation's buffer is pinned while the view is alive
        with pytest.raises(BufferError):
            rel.add(t(2))
        view.release()
        assert rel.add(t(2))


class TestRowBatch:
    def test_iterates_as_argument_tuples(self):
        batch = kernels.RowBatch("p", 2)
        batch.add(encode_args(t(1, 2)), t(1, 2))
        batch.extend_pairs([(encode_args(t(3, 4)), t(3, 4))])
        assert len(batch) == 2
        assert list(batch) == [t(1, 2), t(3, 4)]
        assert batch.rows == [encode_args(t(1, 2)), encode_args(t(3, 4))]


TC = """
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
"""


def _edges(pairs):
    return [Atom("e", (Const(a), Const(b))) for a, b in pairs]


class TestVectorToggle:
    def test_knob_roundtrip(self):
        assert vectorization() in ("on", "off")
        prev = vectorization()
        try:
            set_vectorization("off")
            assert vectorization() == "off"
            assert not kernels.enabled()
            set_vectorization("on")
            assert vectorization() == "on"
            assert kernels.enabled()
        finally:
            set_vectorization(prev)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            set_vectorization("sometimes")

    def test_derive_rows_none_when_off(self):
        from repro.engine.context import ensure_context
        from repro.engine.database import Database

        program = parse_rules(TC)
        db = Database(_edges([(1, 2), (2, 3)]))
        ctx = ensure_context(None, db, "sized-once")
        plan = ctx.plan_for(program.rules[0])
        prev = vectorization()
        try:
            set_vectorization("off")
            assert derive_rows(db, plan) is None
            set_vectorization("on")
            dr = derive_rows(db, plan)
            assert dr is not None
            assert dr.pred == "t" and dr.arity == 2
            assert {dr.decode(row) for row in dr.rows} == {
                t(1, 2),
                t(2, 3),
            }
        finally:
            set_vectorization(prev)

    def test_same_model_both_settings(self):
        program = parse_rules(TC)
        edb = _edges([(1, 2), (2, 3), (3, 4), (2, 5)])
        prev = vectorization()
        try:
            set_vectorization("on")
            on = evaluate(program, edb=edb)
            set_vectorization("off")
            off = evaluate(program, edb=edb)
        finally:
            set_vectorization(prev)
        assert on.database == off.database
        assert on.total_firings == off.total_firings


def _model(generated, **kwargs):
    return evaluate(generated.program, edb=generated.edb, **kwargs)


@given(generated_programs)
@settings(max_examples=25, deadline=None)
def test_vector_equals_specialized_equals_batch_equals_tuple(generated):
    """The vector kernels are an optimization, not a semantics.

    On random admissible programs — negation and grouping included —
    all four executor configurations must produce exactly the same
    model: vector (everything on), specialized (vector off), batch
    (specialization and vector off), and the one-binding-at-a-time
    tuple recursion.
    """
    from repro.engine.exec import set_specialization, specialization

    prev_spec = specialization()
    prev_vec = vectorization()
    try:
        set_specialization("on")
        set_vectorization("on")
        vector = _model(generated, executor="batch")
        set_vectorization("off")
        specialized = _model(generated, executor="batch")
        set_specialization("off")
        batch = _model(generated, executor="batch")
        tup = _model(generated, executor="tuple")
    finally:
        set_specialization(prev_spec)
        set_vectorization(prev_vec)
    assert vector.database == specialized.database
    assert specialized.database == batch.database
    assert batch.database == tup.database
