"""Shared helpers for the LDL1 test suite."""

from __future__ import annotations

from repro.engine import evaluate
from repro.parser import parse_program
from repro.terms.pretty import format_atom


def run(src: str, strategy: str = "seminaive", **kwargs):
    """Parse and evaluate a program, returning the EvaluationResult."""
    program, _ = parse_program(src)
    return evaluate(program, strategy=strategy, **kwargs)


def facts_of(result, pred: str) -> set[str]:
    """The extension of one predicate, as formatted strings."""
    return {format_atom(a) for a in result.database.atoms(pred)}
