"""Tests for the LDL1 universe (repro.terms.universe)."""

import pytest

from repro.errors import EvaluationError
from repro.terms.term import Const, Func, GroupTerm, SetPattern, SetVal, Var, mkset
from repro.terms.universe import finite_subsets, in_universe, set_depth, universe_rank


class TestMembership:
    def test_constants_in_u0(self):
        assert in_universe(Const("a"))
        assert in_universe(Const(7))

    def test_variables_not_in_u(self):
        assert not in_universe(Var("X"))

    def test_scons_terms_not_in_u(self):
        # "terms involving scons are not contained in U0" and are
        # interpreted into U rather than being members.
        assert not in_universe(Func("scons", [Const(1), SetVal()]))

    def test_set_patterns_not_canonical(self):
        assert not in_universe(SetPattern([Const(1)]))

    def test_group_terms_not_in_u(self):
        assert not in_universe(GroupTerm(Var("X")))

    def test_free_functor_terms(self):
        assert in_universe(Func("s", [Func("s", [Const(0)])]))

    def test_sets_of_sets(self):
        assert in_universe(mkset([mkset([Const(1)]), Const(2)]))

    def test_functor_over_set(self):
        assert in_universe(Func("f", [mkset([Const(1)])]))


class TestRank:
    def test_simple_terms_rank_zero(self):
        assert universe_rank(Const("a")) == 0
        assert universe_rank(Func("s", [Const(0)])) == 0

    def test_flat_set_rank_one(self):
        assert universe_rank(mkset([Const(1), Const(2)])) == 1
        assert universe_rank(SetVal()) == 1

    def test_nested_set_rank(self):
        assert universe_rank(mkset([mkset([Const(1)])])) == 2

    def test_functor_does_not_raise_rank(self):
        assert universe_rank(Func("f", [mkset([Const(1)])])) == 1

    def test_rank_of_non_member_raises(self):
        with pytest.raises(EvaluationError):
            universe_rank(Var("X"))


class TestSetDepth:
    def test_matches_rank_for_members(self):
        terms = [
            Const(1),
            mkset([Const(1)]),
            mkset([mkset([Const(1)]), Const(2)]),
            Func("f", [mkset([mkset([Const(1)])])]),
        ]
        for term in terms:
            assert set_depth(term) == universe_rank(term)


class TestFiniteSubsets:
    def test_counts_power_set(self):
        base = {Const(i) for i in range(4)}
        assert sum(1 for _ in finite_subsets(base)) == 16

    def test_max_size_cap(self):
        base = {Const(i) for i in range(5)}
        capped = list(finite_subsets(base, max_size=1))
        assert len(capped) == 6  # empty set + five singletons

    def test_all_members_are_subsets(self):
        base = frozenset({Const(1), Const(2)})
        for subset in finite_subsets(base):
            assert subset.elements <= base

    def test_empty_input(self):
        assert list(finite_subsets(set())) == [SetVal()]
