"""Unit tests for the term algebra (repro.terms.term)."""

import pytest

from repro.errors import EvaluationError, NotInUniverseError
from repro.terms.term import (
    BOTTOM,
    EMPTY_SET,
    Const,
    Func,
    GroupTerm,
    SetPattern,
    SetVal,
    Var,
    contains_group_term,
    evaluate_ground,
    group_terms_of,
    mkset,
)


class TestVar:
    def test_not_ground(self):
        assert not Var("X").is_ground()

    def test_variables(self):
        assert Var("X").variables() == {"X"}

    def test_substitute_bound(self):
        assert Var("X").substitute({"X": Const(1)}) == Const(1)

    def test_substitute_unbound(self):
        assert Var("X").substitute({"Y": Const(1)}) == Var("X")

    def test_equality_and_hash(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")
        assert hash(Var("X")) == hash(Var("X"))


class TestConst:
    def test_ground(self):
        assert Const("a").is_ground()
        assert Const(3).is_ground()

    def test_int_float_distinct(self):
        # 1 and 1.0 are distinct U-elements.
        assert Const(1) != Const(1.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            Const(True)

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            Const(None)

    def test_quoted_only_for_strings(self):
        assert not Const(3, quoted=True).quoted
        assert Const("a b", quoted=True).quoted

    def test_quoted_flag_does_not_affect_equality(self):
        assert Const("a", quoted=True) == Const("a")


class TestFunc:
    def test_rejects_zero_arity(self):
        with pytest.raises(ValueError):
            Func("f", ())

    def test_groundness(self):
        assert Func("f", [Const(1)]).is_ground()
        assert not Func("f", [Var("X")]).is_ground()

    def test_variables_recursive(self):
        term = Func("f", [Var("X"), Func("g", [Var("Y")])])
        assert term.variables() == {"X", "Y"}

    def test_substitute(self):
        term = Func("f", [Var("X")])
        assert term.substitute({"X": Const(1)}) == Func("f", [Const(1)])

    def test_walk_preorder(self):
        inner = Func("g", [Const(1)])
        term = Func("f", [inner])
        walked = list(term.walk())
        assert walked[0] == term
        assert inner in walked
        assert Const(1) in walked


class TestSetVal:
    def test_deduplicates(self):
        assert mkset([Const(1), Const(1)]) == mkset([Const(1)])

    def test_order_insensitive(self):
        assert mkset([Const(1), Const(2)]) == mkset([Const(2), Const(1)])

    def test_rejects_non_ground_elements(self):
        with pytest.raises(ValueError):
            SetVal([Var("X")])

    def test_empty_set_constant(self):
        assert EMPTY_SET == SetVal()
        assert len(EMPTY_SET) == 0

    def test_iteration_deterministic(self):
        s = mkset([Const(3), Const(1), Const(2)])
        assert list(s) == [Const(1), Const(2), Const(3)]

    def test_contains(self):
        assert Const(1) in mkset([Const(1)])
        assert Const(2) not in mkset([Const(1)])

    def test_nested_sets(self):
        nested = mkset([mkset([Const(1)])])
        assert mkset([Const(1)]) in nested

    def test_hashable(self):
        assert hash(mkset([Const(1)])) == hash(mkset([Const(1)]))


class TestSetPattern:
    def test_ground_substitution_becomes_setval(self):
        pattern = SetPattern([Var("X"), Const(2)])
        result = pattern.substitute({"X": Const(1)})
        assert result == mkset([Const(1), Const(2)])

    def test_rest_union(self):
        pattern = SetPattern([Var("X")], rest=Var("R"))
        result = pattern.substitute({"X": Const(1), "R": mkset([Const(2)])})
        assert result == mkset([Const(1), Const(2)])

    def test_duplicates_collapse(self):
        pattern = SetPattern([Var("X"), Var("Y")])
        result = pattern.substitute({"X": Const(1), "Y": Const(1)})
        assert result == mkset([Const(1)])

    def test_partial_substitution_stays_pattern(self):
        pattern = SetPattern([Var("X"), Var("Y")])
        result = pattern.substitute({"X": Const(1)})
        assert isinstance(result, SetPattern)
        assert result.variables() == {"Y"}


class TestGroupTerm:
    def test_never_ground(self):
        assert not GroupTerm(Const(1)).is_ground()

    def test_detection(self):
        term = Func("f", [GroupTerm(Var("X"))])
        assert contains_group_term(term)
        assert not contains_group_term(Func("f", [Var("X")]))

    def test_group_terms_of(self):
        inner = GroupTerm(Var("X"))
        term = Func("f", [inner, GroupTerm(Var("Y"))])
        assert len(group_terms_of(term)) == 2


class TestEvaluateGround:
    def test_scons_adds_element(self):
        term = Func("scons", [Const(1), mkset([Const(2)])])
        assert evaluate_ground(term) == mkset([Const(1), Const(2)])

    def test_scons_idempotent_on_member(self):
        term = Func("scons", [Const(1), mkset([Const(1)])])
        assert evaluate_ground(term) == mkset([Const(1)])

    def test_scons_on_non_set_outside_universe(self):
        term = Func("scons", [Const(1), Const(2)])
        with pytest.raises(NotInUniverseError):
            evaluate_ground(term)

    def test_nested_scons(self):
        term = Func("scons", [Const(1), Func("scons", [Const(2), SetVal()])])
        assert evaluate_ground(term) == mkset([Const(1), Const(2)])

    def test_arithmetic_folds(self):
        term = Func("+", [Const(1), Const(2)])
        assert evaluate_ground(term) == Const(3)

    def test_arithmetic_on_symbols_is_error(self):
        term = Func("+", [Const("a"), Const(1)])
        with pytest.raises(EvaluationError):
            evaluate_ground(term)

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            evaluate_ground(Func("/", [Const(1), Const(0)]))

    def test_integer_division_stays_integral(self):
        assert evaluate_ground(Func("/", [Const(6), Const(3)])) == Const(2)

    def test_free_functor_maps_to_itself(self):
        term = Func("f", [Const(1)])
        assert evaluate_ground(term) == term

    def test_non_ground_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_ground(Var("X"))

    def test_group_term_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_ground(GroupTerm(Const(1)))

    def test_set_inside_functor(self):
        term = Func("f", [Func("scons", [Const(1), SetVal()])])
        assert evaluate_ground(term) == Func("f", [mkset([Const(1)])])


class TestSortKeys:
    def test_total_order_across_kinds(self):
        terms = [
            Var("X"),
            Const(1),
            Const("a"),
            Func("f", [Const(1)]),
            mkset([Const(1)]),
            BOTTOM,
        ]
        keys = [t.sort_key() for t in terms]
        assert sorted(keys) is not None  # all keys mutually comparable

    def test_key_consistent_with_equality(self):
        a = mkset([Const(1), Const(2)])
        b = mkset([Const(2), Const(1)])
        assert a.sort_key() == b.sort_key()
