"""Tests for negation elimination via grouping (paper §3.3)."""

import pytest

from repro.engine import evaluate
from repro.errors import NotAdmissibleError
from repro.parser import parse_rules
from repro.program.dependency import is_admissible
from repro.transform import eliminate_negation
from repro.terms.pretty import format_atom


def model_of(program, preds):
    result = evaluate(program)
    return {
        format_atom(a)
        for pred in preds
        for a in result.database.atoms(pred)
    }


EXCL_ANCESTOR = """
parent(a, b). parent(b, c).
person(a). person(b). person(c).
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
excl(X, Y, Z) <- anc(X, Y), person(Z), ~anc(X, Z).
"""


class TestEliminateNegation:
    def test_result_is_positive(self):
        program = parse_rules(EXCL_ANCESTOR)
        assert not program.is_positive()
        assert eliminate_negation(program).is_positive()

    def test_admissibility_preserved(self):
        # paper §3.3 observation (1)
        program = parse_rules(EXCL_ANCESTOR)
        assert is_admissible(eliminate_negation(program))

    def test_standard_model_preserved(self):
        # paper §3.3 observation (2): the standard model of the
        # transformed program restricted to original predicates equals
        # the original standard model.
        program = parse_rules(EXCL_ANCESTOR)
        preds = program.predicates()
        assert model_of(program, preds) == model_of(
            eliminate_negation(program), preds
        )

    def test_no_negation_is_identity(self):
        program = parse_rules("p(1). q(X) <- p(X).")
        assert eliminate_negation(program) == program

    def test_unary_negation(self):
        program = parse_rules(
            """
            b(1). b(2). r(1).
            p(X) <- b(X), ~r(X).
            """
        )
        transformed = eliminate_negation(program)
        assert transformed.is_positive()
        assert model_of(program, {"p"}) == model_of(transformed, {"p"})
        assert model_of(transformed, {"p"}) == {"p(2)"}

    def test_multiple_negations_in_one_rule(self):
        program = parse_rules(
            """
            b(1). b(2). b(3). r(1). s(2).
            p(X) <- b(X), ~r(X), ~s(X).
            """
        )
        transformed = eliminate_negation(program)
        assert transformed.is_positive()
        assert model_of(transformed, {"p"}) == {"p(3)"}

    def test_negation_in_two_rules(self):
        program = parse_rules(
            """
            b(1). b(2). r(1).
            p(X) <- b(X), ~r(X).
            q(X) <- b(X), ~p(X).
            """
        )
        transformed = eliminate_negation(program)
        assert transformed.is_positive()
        assert model_of(program, {"p", "q"}) == model_of(
            transformed, {"p", "q"}
        )

    def test_negation_over_set_arguments(self):
        program = parse_rules(
            """
            s(1, {a}). s(2, {a, b}). keyset({a}).
            odd(X) <- s(X, S), ~keyset(S).
            """
        )
        transformed = eliminate_negation(program)
        assert transformed.is_positive()
        assert model_of(transformed, {"odd"}) == {"odd(2)"}

    def test_recursive_rule_with_lower_layer_binding(self):
        # negation whose variables are bound by a lower-layer literal in
        # a recursive rule: context must avoid the recursive predicate.
        program = parse_rules(
            """
            edge(1, 2). edge(2, 3). edge(3, 4). blocked(3).
            reach(1).
            reach(Y) <- reach(X), edge(X, Y), ~blocked(Y).
            """
        )
        transformed = eliminate_negation(program)
        assert is_admissible(transformed)
        assert model_of(program, {"reach"}) == model_of(
            transformed, {"reach"}
        )
        assert model_of(transformed, {"reach"}) == {"reach(1)", "reach(2)"}

    def test_unbindable_context_raises(self):
        # X is only bound by the recursive literal: the executable
        # transformation cannot build a lower-layer context.
        program = parse_rules(
            """
            seed(1). bad(2).
            t(X) <- seed(X).
            t(X) <- t(X), ~bad(X).
            """
        )
        with pytest.raises(NotAdmissibleError):
            eliminate_negation(program)

    def test_bottom_constant_unparsable_name(self):
        # the reserved constant cannot collide with user symbols: it is
        # only writable as a quoted string.
        from repro.terms.term import BOTTOM

        assert BOTTOM.value == "$bottom"
