"""Tests for sip construction and validation (paper §6 conditions 1-3)."""

import pytest

from repro.engine import evaluate
from repro.errors import MagicRewriteError
from repro.magic import (
    HEAD_NODE,
    bound_first_sip,
    evaluate_magic,
    left_to_right_sip,
    magic_rewrite,
    validate_sip,
)
from repro.magic.sips import Sip, SipArc
from repro.parser import parse_query, parse_rule, parse_rules


class TestDefaultSipConstruction:
    def test_paper_rule2_sip(self):
        # rule 2: a(X,Y) <- a(X,Z), a(Z,Y) with head bf.
        # paper: {a_h} ->X a1, {a_h, a1} ->Z a2
        rule = parse_rule("a(X, Y) <- a(X, Z), a(Z, Y).")
        sip = left_to_right_sip(rule, "bf")
        assert len(sip.arcs) == 2
        first, second = sip.arcs
        assert first.sources == {HEAD_NODE}
        assert first.target == 0
        assert first.label == {"X"}
        assert HEAD_NODE not in second.sources or second.sources >= {0}
        assert second.target == 1
        assert second.label == {"Z"}

    def test_paper_rule4_sip(self):
        # rule 4: sg(X,Y) <- p(Z1,X), sg(Z1,Z2), p(Z2,Y) with head bf.
        # paper: {sg_h, p} ->Z1 sg
        rule = parse_rule("sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).")
        sip = left_to_right_sip(rule, "bf")
        to_sg = [arc for arc in sip.arcs if arc.target == 1]
        assert to_sg
        assert to_sg[0].label == {"Z1"}
        assert 0 in to_sg[0].sources  # the p occurrence supplies Z1

    def test_free_head_no_initial_arc(self):
        rule = parse_rule("a(X, Y) <- a(X, Z), a(Z, Y).")
        sip = left_to_right_sip(rule, "ff")
        # nothing bound before the first literal
        assert all(arc.target != 0 for arc in sip.arcs)

    def test_sips_validate(self):
        rules = parse_rules(
            """
            a(X, Y) <- a(X, Z), a(Z, Y).
            sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
            young(X, <Y>) <- sg(X, Y), ~has_desc(X).
            """
        )
        for rule in rules:
            for adornment_char in ("b", "f"):
                adornment = adornment_char + "f" * (rule.head.arity - 1)
                for strategy in (left_to_right_sip, bound_first_sip):
                    sip = strategy(rule, adornment)
                    validate_sip(rule, adornment, sip)

    def test_grouped_head_argument_contributes_nothing(self):
        # footnote 6: even if marked bound, <Y> passes no bindings.
        rule = parse_rule("young(X, <Y>) <- sg(X, Y), other(Y).")
        sip = left_to_right_sip(rule, "bf")
        for arc in sip.arcs:
            if HEAD_NODE in arc.sources:
                assert "Y" not in arc.label or arc.target != 0


class TestBoundFirstSip:
    def test_reorders_to_propagate_bindings(self):
        rule = parse_rule("t(X, Y) <- t(Z, Y), e(X, Z).")
        ltr = left_to_right_sip(rule, "bf")
        bf = bound_first_sip(rule, "bf")
        assert ltr.order == (0, 1)
        assert bf.order == (1, 0)
        # with e first, the recursive call receives Z bound
        to_t = [arc for arc in bf.arcs if arc.target == 0]
        assert to_t and to_t[0].label == {"Z"}

    def test_avoids_ff_adornment_blowup(self):
        src = """
        e(1, 2). e(2, 3). e(3, 4). e(10, 11).
        t(X, Y) <- t(Z, Y), e(X, Z).
        t(X, Y) <- e(X, Y).
        """
        program = parse_rules(src)
        query = parse_query("? t(1, X).")
        ltr = magic_rewrite(program, query)
        bf = magic_rewrite(program, query, sip_strategy=bound_first_sip)
        ltr_preds = {r.head.pred for r in ltr.modified_rules}
        bf_preds = {r.head.pred for r in bf.modified_rules}
        assert "t__ff" in ltr_preds  # left-to-right loses the binding
        assert bf_preds == {"t__bf"}  # bound-first keeps it

    def test_same_answers_under_both_sips(self):
        src = """
        e(1, 2). e(2, 3). e(3, 4). e(10, 11).
        t(X, Y) <- t(Z, Y), e(X, Z).
        t(X, Y) <- e(X, Y).
        """
        program = parse_rules(src)
        query = parse_query("? t(1, X).")
        full = evaluate(program).answer_atoms(query)
        for strategy in (None, bound_first_sip):
            result = evaluate_magic(
                program,
                query,
                rewrite=lambda p, q, s=strategy: magic_rewrite(p, q, sip_strategy=s),
            )
            assert result.answer_atoms() == full


class TestValidation:
    def test_rejects_bad_order(self):
        rule = parse_rule("p(X) <- q(X), r(X).")
        bad = Sip(arcs=(), order=(0,))
        with pytest.raises(MagicRewriteError):
            validate_sip(rule, "b", bad)

    def test_rejects_source_after_target(self):
        rule = parse_rule("p(X) <- q(X), r(X).")
        bad = Sip(
            arcs=(SipArc(frozenset({1}), 0, frozenset({"X"})),),
            order=(0, 1),
        )
        with pytest.raises(MagicRewriteError):
            validate_sip(rule, "b", bad)

    def test_rejects_label_var_not_in_target(self):
        rule = parse_rule("p(X, Y) <- q(X), r(Y).")
        bad = Sip(
            arcs=(SipArc(frozenset({HEAD_NODE}), 1, frozenset({"X"})),),
            order=(0, 1),
        )
        with pytest.raises(MagicRewriteError):
            validate_sip(rule, "bb", bad)

    def test_rejects_disconnected_source(self):
        rule = parse_rule("p(X, Y) <- q(X), r(X, Y).")
        bad = Sip(
            arcs=(
                SipArc(frozenset({HEAD_NODE, 0}), 1, frozenset({"Y"})),
            ),
            order=(0, 1),
        )
        # q(X) shares no variable with the label {Y}
        with pytest.raises(MagicRewriteError):
            validate_sip(rule, "fb", bad)

    def test_accepts_paper_young_sip(self):
        # sips for rule 5: {young_h} ->X ~a, {young_h, ~a} ->X sg
        rule = parse_rule("young(X, <Y>) <- ~a(X, Z), sg(X, Y).")
        sip = Sip(
            arcs=(
                SipArc(frozenset({HEAD_NODE}), 0, frozenset({"X"})),
                SipArc(frozenset({HEAD_NODE}), 1, frozenset({"X"})),
            ),
            order=(0, 1),
        )
        validate_sip(rule, "bf", sip)
