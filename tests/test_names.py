"""Tests for reserved names and fresh-name generation (repro.names)."""

from repro.names import BUILTIN_PREDICATES, FreshNames, is_builtin_predicate


class TestBuiltinRegistry:
    def test_paper_reserved_symbols_present(self):
        # §2.1: "Some predicate symbols are reserved by LDL1, e.g.
        # member, union."
        assert "member" in BUILTIN_PREDICATES
        assert "union" in BUILTIN_PREDICATES
        assert is_builtin_predicate("partition")
        assert is_builtin_predicate("=")

    def test_user_predicates_not_builtin(self):
        assert not is_builtin_predicate("ancestor")
        assert not is_builtin_predicate("memberx")


class TestFreshNames:
    def test_avoids_taken_names(self):
        gen = FreshNames({"aux_1", "p"})
        assert gen.fresh() == "aux_2"

    def test_stem_override(self):
        gen = FreshNames(set())
        name = gen.fresh("ctx")
        assert name.startswith("ctx_")

    def test_never_repeats(self):
        gen = FreshNames(set())
        names = {gen.fresh() for _ in range(50)}
        assert len(names) == 50

    def test_never_collides_with_builtins(self):
        gen = FreshNames(set(), prefix="member")
        assert gen.fresh() not in BUILTIN_PREDICATES

    def test_reserve(self):
        gen = FreshNames(set())
        gen.reserve("aux_1")
        assert gen.fresh() != "aux_1"


class TestDominationSampleChecker:
    def test_partial_order_sample_holds_on_ground_terms(self):
        from repro.terms.domination import is_partial_order_sample
        from repro.terms.term import Const, Func, mkset

        sample = [
            Const(1),
            Const("a"),
            mkset([Const(1)]),
            mkset([Const(1), Const(2)]),
            Func("f", [mkset([Const(1)])]),
            Func("f", [mkset([Const(1), Const(2)])]),
        ]
        assert is_partial_order_sample(sample)


class TestDataDumpCompoundTerms:
    def test_functor_cells_roundtrip_as_text(self, tmp_path):
        from repro.data import dump_delimited
        from repro.parser import parse_atom

        path = tmp_path / "out.csv"
        dump_delimited([parse_atom("p(f(1, 2), x)")], path)
        content = path.read_text()
        assert "f(1, 2)" in content
