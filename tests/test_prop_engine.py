"""Property-based tests for the evaluation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.engine.builtins import solve_builtin
from repro.parser import parse_rules
from repro.program.rule import Atom
from repro.terms.term import Const, SetVal, Var

from tests.strategies import generated_programs, ground_sets

TC_RULES = """
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
"""

edges = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    max_size=25,
    unique=True,
)


def edge_atoms(pairs):
    return [Atom("e", (Const(a), Const(b))) for a, b in pairs]


@given(edges)
@settings(max_examples=40, deadline=None)
def test_naive_equals_seminaive_on_random_graphs(pairs):
    program = parse_rules(TC_RULES)
    edb = edge_atoms(pairs)
    naive = evaluate(program, edb=edb, strategy="naive")
    semi = evaluate(program, edb=edb, strategy="seminaive")
    assert naive.database == semi.database


@given(generated_programs)
@settings(max_examples=25, deadline=None)
def test_scc_schedule_equals_layer_schedule(generated):
    """SCC-condensed scheduling is an optimization, not a semantics.

    On random admissible programs — negation and grouping included —
    evaluating each stratum SCC-by-SCC (non-recursive components in a
    single pass) must produce exactly the model of the layer-at-a-time
    fixpoint (Theorem 2 licenses the per-component order)."""
    scc = evaluate(generated.program, edb=generated.edb, scheduler="scc")
    layer = evaluate(generated.program, edb=generated.edb, scheduler="layer")
    assert scc.database == layer.database


@given(generated_programs)
@settings(max_examples=25, deadline=None)
def test_batch_executor_equals_tuple_executor(generated):
    """The set-at-a-time batch executor is an optimization, not a
    semantics.

    On random admissible programs — negation and grouping included —
    running every rule body through the batch operator pipeline must
    produce exactly the model of the original one-binding-at-a-time
    recursion."""
    batch = evaluate(generated.program, edb=generated.edb, executor="batch")
    tup = evaluate(generated.program, edb=generated.edb, executor="tuple")
    assert batch.database == tup.database


@given(generated_programs)
@settings(max_examples=10, deadline=None)
def test_batch_executor_equals_tuple_executor_naive(generated):
    """Same differential under the naive strategy (no delta overrides),
    covering the full-scan join paths."""
    batch = evaluate(
        generated.program, edb=generated.edb, strategy="naive",
        executor="batch",
    )
    tup = evaluate(
        generated.program, edb=generated.edb, strategy="naive",
        executor="tuple",
    )
    assert batch.database == tup.database


@given(edges)
@settings(max_examples=30, deadline=None)
def test_transitive_closure_matches_reference(pairs):
    program = parse_rules(TC_RULES)
    result = evaluate(program, edb=edge_atoms(pairs))
    # reference closure by floyd-style saturation over python sets
    closure = set(pairs)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    computed = {
        (atom.args[0].value, atom.args[1].value)
        for atom in result.database.atoms("t")
    }
    assert computed == closure


@given(edges)
@settings(max_examples=30, deadline=None)
def test_grouping_matches_manual_groupby(pairs):
    program = parse_rules("g(K, <V>) <- e(K, V).")
    result = evaluate(program, edb=edge_atoms(pairs))
    expected: dict[int, set[int]] = {}
    for a, b in pairs:
        expected.setdefault(a, set()).add(b)
    computed = {
        atom.args[0].value: {e.value for e in atom.args[1]}
        for atom in result.database.atoms("g")
    }
    assert computed == expected


@given(edges)
@settings(max_examples=20, deadline=None)
def test_stratified_negation_complement(pairs):
    # p(X) holds exactly for sources with no incoming edge
    program = parse_rules(
        """
        node(X) <- e(X, _).
        node(Y) <- e(_, Y).
        has_in(Y) <- e(_, Y).
        root(X) <- node(X), ~has_in(X).
        """
    )
    result = evaluate(program, edb=edge_atoms(pairs))
    nodes = {a for a, _ in pairs} | {b for _, b in pairs}
    targets = {b for _, b in pairs}
    roots = {atom.args[0].value for atom in result.database.atoms("root")}
    assert roots == nodes - targets


@given(ground_sets, ground_sets)
@settings(max_examples=60)
def test_union_builtin_matches_frozenset_union(a, b):
    [binding] = solve_builtin("union", (a, b, Var("S")), {})
    assert binding["S"] == SetVal(a.elements | b.elements)


@given(ground_sets)
@settings(max_examples=40)
def test_partition_builtin_parts_are_complementary(s):
    if len(s) > 8:
        return
    for binding in solve_builtin("partition", (s, Var("A"), Var("B")), {}):
        left, right = binding["A"], binding["B"]
        assert left.elements | right.elements == s.elements
        assert not left.elements & right.elements


@given(ground_sets)
@settings(max_examples=60)
def test_member_builtin_enumerates_exactly(s):
    values = {b["X"] for b in solve_builtin("member", (Var("X"), s), {})}
    assert values == set(s.elements)


@given(ground_sets)
@settings(max_examples=40)
def test_card_builtin(s):
    [binding] = solve_builtin("card", (s, Var("N")), {})
    assert binding["N"] == Const(len(s))


@given(ground_sets, ground_sets)
@settings(max_examples=40)
def test_subset_builtin_test_mode(a, b):
    holds = bool(list(solve_builtin("subset", (a, b), {})))
    assert holds == (a.elements <= b.elements)
