"""Tests for engine observability (repro.observe) and its surfaces.

TraceRecorder/MetricsCollector behavior, hook composition, the
``trace=``/``hooks=`` arguments on the api layer, and the CLI's
``--trace`` summary.
"""

import io

from repro.api import LDL
from repro.cli import run as cli_run
from repro.observe import (
    NULL_HOOKS,
    CompositeHooks,
    MetricsCollector,
    NullHooks,
    TraceRecorder,
    compose_hooks,
)

from tests.helpers import run

ANC = """
parent(a, b). parent(b, c).
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
"""


class TestComposeHooks:
    def test_empty_is_null(self):
        assert compose_hooks() is NULL_HOOKS
        assert compose_hooks(None, NULL_HOOKS) is NULL_HOOKS

    def test_single_passthrough(self):
        recorder = TraceRecorder()
        assert compose_hooks(None, recorder) is recorder

    def test_composite_fans_out(self):
        a, b = TraceRecorder(), TraceRecorder()
        combined = compose_hooks(a, b)
        assert isinstance(combined, CompositeHooks)
        combined.on_iteration(1, 5)
        assert a.count("iteration") == b.count("iteration") == 1

    def test_null_hooks_accept_all_events(self):
        hooks = NullHooks()
        hooks.on_plan_built(None)
        hooks.on_layer_start(0, ())
        hooks.on_layer_end(0, 0)
        hooks.on_iteration(0, 0)
        hooks.on_rule_fired(None, 0)
        hooks.on_fact_derived(None, None)


class TestTraceRecorder:
    def test_records_layer_lifecycle(self):
        recorder = TraceRecorder()
        run(ANC, hooks=recorder)
        assert recorder.count("layer_start") == recorder.count("layer_end")
        assert recorder.count("layer_start") >= 1
        assert recorder.plans_built == 3

    def test_fact_events_cover_the_model(self):
        recorder = TraceRecorder()
        result = run(ANC, hooks=recorder)
        derived = {e.payload["fact"] for e in recorder.events if e.kind == "fact_derived"}
        assert derived == set(result.database.atoms("anc"))

    def test_events_carry_layer(self):
        recorder = TraceRecorder()
        run(ANC, hooks=recorder)
        fired = [e for e in recorder.events if e.kind == "rule_fired"]
        assert fired and all(e.payload["layer"] is not None for e in fired)

    def test_format_summary(self):
        recorder = TraceRecorder()
        run(ANC, hooks=recorder)
        summary = recorder.format_summary()
        assert summary.startswith("% trace:")
        assert "plans built" in summary
        assert "rule firings" in summary


class TestMetricsCollector:
    def test_phases_recorded(self):
        metrics = MetricsCollector()
        run(ANC, metrics=metrics)
        assert "plan" in metrics.phases
        assert "match" in metrics.phases
        assert metrics.layers  # per-layer timings in evaluation order

    def test_grouping_phase_recorded(self):
        metrics = MetricsCollector()
        run("e(1, 2). e(1, 3). s(X, <Y>) <- e(X, Y).", metrics=metrics)
        assert "grouping" in metrics.phases

    def test_report_shape(self):
        metrics = MetricsCollector()
        run(ANC, metrics=metrics)
        report = metrics.report()
        assert set(report) == {
            "phases", "counters", "layers", "sccs", "join_orders"
        }
        assert all({"layer", "seconds"} == set(row) for row in report["layers"])
        # one entry per compiled plan: which join order the planner chose
        assert all(
            {"rule", "order", "planner"} <= set(entry)
            for entry in report["join_orders"]
        )
        assert report["join_orders"]

    def test_result_carries_collector(self):
        metrics = MetricsCollector()
        result = run(ANC, metrics=metrics)
        assert result.metrics is metrics

    def test_format_mentions_counters(self):
        metrics = MetricsCollector()
        metrics.add_time("plan", 0.001)
        metrics.incr("plans_built", 2)
        assert "plans_built=2" in metrics.format()


class TestApiTrace:
    def test_trace_records_model_evaluation(self):
        session = LDL(ANC, trace=True)
        session.model()
        assert session.trace is not None
        assert session.trace.plans_built == 3

    def test_trace_off_by_default(self):
        assert LDL(ANC).trace is None

    def test_external_hooks_compose_with_trace(self):
        mine = TraceRecorder()
        session = LDL(ANC, hooks=mine, trace=True)
        session.model()
        assert mine.plans_built == session.trace.plans_built == 3


class TestCliTrace:
    def _invoke(self, tmp_path, argv_extra):
        path = tmp_path / "prog.ldl"
        path.write_text(ANC + "? anc(a, X).\n")
        out = io.StringIO()
        code = cli_run([str(path), *argv_extra], out=out)
        return code, out.getvalue()

    def test_trace_summary_printed(self, tmp_path):
        code, output = self._invoke(tmp_path, ["--trace"])
        assert code == 0
        assert "% trace:" in output
        assert "plans built" in output

    def test_no_trace_by_default(self, tmp_path):
        code, output = self._invoke(tmp_path, [])
        assert code == 0
        assert "% trace:" not in output
