"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import run


@pytest.fixture
def family_file(tmp_path):
    path = tmp_path / "family.ldl"
    path.write_text(
        """
        parent(ann, bob). parent(bob, cal).
        ancestor(X, Y) <- parent(X, Y).
        ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
        ? ancestor(ann, X).
        """
    )
    return str(path)


def invoke(argv):
    out = io.StringIO()
    code = run(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_file_queries_answered(self, family_file):
        code, output = invoke([family_file])
        assert code == 0
        assert "X = 'bob'" in output
        assert "X = 'cal'" in output

    def test_adhoc_query(self, family_file):
        code, output = invoke([family_file, "-q", "? ancestor(bob, X)."])
        assert code == 0
        assert "X = 'cal'" in output

    def test_ground_query_yes_no(self, family_file):
        code, output = invoke([family_file, "-q", "? ancestor(ann, cal)."])
        assert "yes" in output
        code, output = invoke([family_file, "-q", "? ancestor(cal, ann)."])
        assert "no" in output

    def test_magic_strategy(self, family_file):
        code, output = invoke([family_file, "--strategy", "magic"])
        assert code == 0
        assert "X = 'bob'" in output

    def test_check_mode(self, family_file):
        code, output = invoke(["--check", family_file])
        assert code == 0
        assert "layers" in output
        assert "ancestor" in output

    def test_dump(self, family_file):
        code, output = invoke([family_file, "--dump", "ancestor"])
        assert "ancestor(ann, cal)." in output

    def test_stats(self, family_file):
        code, output = invoke([family_file, "--stats"])
        assert "rule firings" in output

    def test_model_printed_without_queries(self, tmp_path):
        path = tmp_path / "p.ldl"
        path.write_text("p(1). q(X) <- p(X).")
        code, output = invoke([str(path)])
        assert code == 0
        assert "q(1)." in output

    def test_missing_file(self):
        code, output = invoke(["/nonexistent/path.ldl"])
        assert code == 2
        assert "cannot read" in output

    def test_parse_error_reported(self, tmp_path):
        path = tmp_path / "bad.ldl"
        path.write_text("p(1")
        code, output = invoke([str(path)])
        assert code == 1
        assert "error" in output

    def test_inadmissible_reported(self, tmp_path):
        path = tmp_path / "bad.ldl"
        path.write_text("b(1). p(X) <- b(X), ~p(X).")
        code, output = invoke([str(path)])
        assert code == 1
        assert "admissible" in output

    def test_ldl15_flag(self, tmp_path):
        path = tmp_path / "g.ldl"
        path.write_text(
            "r(t, s1, mon). r(t, s2, tue). out(T, <S>, <D>) <- r(T, S, D)."
        )
        code, output = invoke([str(path), "--ldl15", "--dump", "out"])
        assert code == 0
        assert "out(t, {s1, s2}, {mon, tue})." in output

    def test_example_program_runs(self):
        code, output = invoke(["examples/programs/family.ldl"])
        assert code == 0
        assert "children" in output or "S = " in output


class TestRepl:
    def _repl(self, family_file, script):
        import io

        from repro.cli import run

        out = io.StringIO()
        code = run(
            [family_file, "--repl"], out=out, stdin=io.StringIO(script)
        )
        return code, out.getvalue()

    def test_query(self, family_file):
        code, output = self._repl(family_file, "? ancestor(ann, X).\n:quit\n")
        assert code == 0
        assert "X = 'cal'" in output

    def test_add_rule_and_requery(self, family_file):
        script = (
            "grand(X, Y) <- parent(X, Z), parent(Z, Y).\n"
            "? grand(ann, X).\n:quit\n"
        )
        code, output = self._repl(family_file, script)
        assert "% ok" in output
        assert "X = 'cal'" in output

    def test_add_fact(self, family_file):
        script = "parent(cal, dee).\n? ancestor(ann, dee).\n:quit\n"
        _, output = self._repl(family_file, script)
        assert "yes" in output

    def test_dump_command(self, family_file):
        _, output = self._repl(family_file, ":dump parent\n:quit\n")
        assert "parent(ann, bob)." in output

    def test_explain_command(self, family_file):
        _, output = self._repl(
            family_file, ":explain ancestor(ann, cal)\n:quit\n"
        )
        assert "parent(bob, cal)" in output

    def test_strategy_switch(self, family_file):
        script = ":strategy magic\n? ancestor(ann, X).\n:quit\n"
        _, output = self._repl(family_file, script)
        assert "% strategy = magic" in output
        assert "X = 'bob'" in output

    def test_layers_command(self, family_file):
        _, output = self._repl(family_file, ":layers\n:quit\n")
        assert "layer 0" in output

    def test_error_recovery(self, family_file):
        script = "p(1\n? ancestor(ann, X).\n:quit\n"
        code, output = self._repl(family_file, script)
        assert code == 0
        assert "error" in output
        assert "X = 'bob'" in output  # the loop survives

    def test_unknown_command(self, family_file):
        _, output = self._repl(family_file, ":frobnicate\n:quit\n")
        assert "unknown command" in output

    def test_help(self, family_file):
        _, output = self._repl(family_file, ":help\n:quit\n")
        assert ":dump" in output


class TestSamplePrograms:
    @pytest.mark.parametrize(
        "path",
        [
            "examples/programs/family.ldl",
            "examples/programs/same_generation.ldl",
            "examples/programs/inventory.ldl",
        ],
    )
    def test_sample_program_runs(self, path):
        code, output = invoke([path])
        assert code == 0
        assert "error" not in output

    @pytest.mark.parametrize(
        "path",
        [
            "examples/programs/family.ldl",
            "examples/programs/same_generation.ldl",
            "examples/programs/inventory.ldl",
        ],
    )
    def test_sample_program_checks(self, path):
        code, output = invoke(["--check", path])
        assert code == 0
        assert output.startswith("ok:")
