"""Tests for the classical T_P operator and its LDL1 failure modes."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.errors import EvaluationError
from repro.parser import parse_atom, parse_rules
from repro.semantics.fixpoint_theory import (
    is_monotone_on,
    lfp,
    tp,
    tp_with_grouping,
)

SIMPLE = parse_rules(
    """
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
    """
)


def atoms(*sources):
    return frozenset(parse_atom(s) for s in sources)


class TestTp:
    def test_one_step(self):
        result = tp(SIMPLE, atoms("e(1, 2)"))
        assert parse_atom("t(1, 2)") in result

    def test_facts_included(self):
        program = parse_rules("p(1). q(X) <- p(X).")
        result = tp(program, frozenset())
        assert parse_atom("p(1)") in result

    def test_rejects_negation(self):
        program = parse_rules("p(X) <- q(X), ~r(X).")
        with pytest.raises(EvaluationError):
            tp(program, frozenset())

    def test_rejects_grouping(self):
        program = parse_rules("g(<X>) <- q(X).")
        with pytest.raises(EvaluationError):
            tp(program, frozenset())

    def test_lfp_equals_engine_for_simple_programs(self):
        base = atoms("e(1, 2)", "e(2, 3)", "e(3, 4)")
        fixpoint = lfp(SIMPLE, base)
        engine = evaluate(SIMPLE, edb=base).database.as_set()
        assert fixpoint == engine

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            max_size=12,
            unique=True,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_monotonicity_property(self, pairs):
        from repro.program.rule import Atom
        from repro.terms.term import Const

        base = frozenset(
            Atom("e", (Const(a), Const(b))) for a, b in pairs
        )
        smaller = frozenset(list(base)[: len(base) // 2])
        assert is_monotone_on(SIMPLE, smaller, base)

    def test_monotone_requires_comparable(self):
        with pytest.raises(ValueError):
            is_monotone_on(SIMPLE, atoms("e(1, 2)"), atoms("e(3, 4)"))


class TestGroupingBreaksTheLattice:
    PROGRAM = parse_rules("g(<X>) <- q(X).")

    def test_not_monotone(self):
        # growing the input *changes* the grouped set: the old output is
        # not a subset of the new one.
        small = tp_with_grouping(self.PROGRAM, atoms("q(1)"))
        large = tp_with_grouping(self.PROGRAM, atoms("q(1)", "q(2)"))
        assert parse_atom("g({1})") in small
        assert parse_atom("g({1})") not in large  # replaced by g({1,2})
        assert not small <= large

    def test_naive_iteration_diverges_on_russell_program(self):
        # p(<X>) <- p(X), p(1): each application grows the grouped set —
        # no fixpoint exists (the paper's no-model example).
        program = parse_rules("p(<X>) <- p(X).")
        current = atoms("p(1)")
        seen = set()
        for _ in range(5):
            step = frozenset(current | tp_with_grouping(program, current))
            assert step != current  # never stabilizes
            assert step not in seen
            seen.add(step)
            current = step

    def test_rejects_negation(self):
        program = parse_rules("p(X) <- q(X), ~r(X).")
        with pytest.raises(EvaluationError):
            tp_with_grouping(program, frozenset())
