"""Tests for the tokenizer (repro.parser.lexer)."""

import pytest

from repro.errors import LexerError
from repro.parser.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)][:-1]  # drop EOF


class TestBasicTokens:
    def test_identifiers_vs_variables(self):
        tokens = list(tokenize("foo Bar _baz"))
        assert tokens[0].kind == "IDENT"
        assert tokens[1].kind == "VAR"
        assert tokens[2].kind == "VAR"

    def test_numbers(self):
        tokens = list(tokenize("12 3.5 2e3"))
        assert tokens[0].value == 12
        assert tokens[1].value == 3.5
        assert tokens[2].value == 2000.0

    def test_number_then_dot_is_rule_end(self):
        # "q(3)." — the final dot must be DOT, not part of the number.
        assert kinds("3.")[:2] == ["NUMBER", "DOT"]

    def test_strings_with_escapes(self):
        tokens = list(tokenize(r"'a b' 'it\'s'"))
        assert tokens[0].value == "a b"
        assert tokens[1].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            list(tokenize("'oops"))

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            list(tokenize("p(@)"))

    def test_bang_requires_equals(self):
        with pytest.raises(LexerError):
            list(tokenize("a ! b"))


class TestOperators:
    def test_arrow_vs_less_than(self):
        assert kinds("<-")[:1] == ["ARROW"]
        assert kinds("< -")[:2] == ["LT", "MINUS"]

    def test_le_vs_lt(self):
        assert kinds("<=")[:1] == ["LE"]
        assert kinds("< =")[:2] == ["LT", "EQ"]

    def test_ge_gt_ne(self):
        assert kinds(">= > !=")[:3] == ["GE", "GT", "NE"]

    def test_question_forms(self):
        assert kinds("?")[:1] == ["QUESTION"]
        assert kinds("?-")[:1] == ["QUESTION"]

    def test_negation_glyphs(self):
        assert kinds("~")[:1] == ["TILDE"]
        assert kinds("¬")[:1] == ["TILDE"]

    def test_punctuation(self):
        assert kinds("( ) { } , . |")[:7] == [
            "LPAREN",
            "RPAREN",
            "LBRACE",
            "RBRACE",
            "COMMA",
            "DOT",
            "BAR",
        ]


class TestCommentsAndPositions:
    def test_percent_comment(self):
        assert kinds("a % rest of line\nb")[:2] == ["IDENT", "IDENT"]

    def test_hash_comment(self):
        assert kinds("a # comment\nb")[:2] == ["IDENT", "IDENT"]

    def test_line_numbers(self):
        tokens = list(tokenize("a\nb\n  c"))
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_eof_token_last(self):
        assert kinds("")[-1] == "EOF"
