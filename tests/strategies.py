"""Shared hypothesis strategies for LDL1 terms and workloads."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.terms.term import Const, Func, SetVal, Var
from repro.workloads.generator import GeneratorConfig, random_program

#: Symbols drawn from a small pool so collisions (and therefore
#: interesting set overlaps) are common.
symbols = st.sampled_from(["a", "b", "c", "d", "foo", "bar"])

scalar_constants = st.one_of(
    st.integers(min_value=-20, max_value=20).map(Const),
    symbols.map(Const),
    st.sampled_from([0.5, 2.5, -1.25]).map(Const),
)


def _extend_ground(children: st.SearchStrategy) -> st.SearchStrategy:
    functors = st.sampled_from(["f", "g", "pair"])
    funcs = st.builds(
        lambda name, args: Func(name, args),
        functors,
        st.lists(children, min_size=1, max_size=3),
    )
    sets = st.builds(lambda items: SetVal(items), st.lists(children, max_size=4))
    return funcs | sets


#: Arbitrary canonical ground terms (members of the LDL1 universe).
ground_terms = st.recursive(scalar_constants, _extend_ground, max_leaves=12)

#: Ground sets only.
ground_sets = st.builds(
    lambda items: SetVal(items), st.lists(ground_terms, max_size=5)
)

variables = st.sampled_from(["X", "Y", "Z", "W"]).map(Var)


def _extend_pattern(children: st.SearchStrategy) -> st.SearchStrategy:
    functors = st.sampled_from(["f", "g"])
    return st.builds(
        lambda name, args: Func(name, args),
        functors,
        st.lists(children, min_size=1, max_size=3),
    )


#: Terms that may contain variables (no set patterns: those are covered
#: by dedicated tests since their matching is nondeterministic).
pattern_terms = st.recursive(
    scalar_constants | variables, _extend_pattern, max_leaves=8
)

#: Plain Python scalars accepted by :func:`repro.api.to_term`.  Floats
#: come from a fixed exactly-representable pool so equality round-trips.
python_scalars = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.sampled_from(["a", "b", "c", "foo", "bar"]),
    st.sampled_from([0.5, 2.5, -1.25]),
)


def _extend_python(children: st.SearchStrategy) -> st.SearchStrategy:
    # 1-tuples included on purpose: they must stay tuples through the
    # to_term/from_term round trip, not collapse to their element.
    tuples = st.lists(children, min_size=1, max_size=3).map(tuple)
    sets = st.lists(children, max_size=3).map(frozenset)
    return tuples | sets


#: Arbitrary Python values convertible by :func:`repro.api.to_term`:
#: scalars, non-empty tuples, and frozensets, nested freely.
python_values = st.recursive(python_scalars, _extend_python, max_leaves=10)

#: Random admissible programs (with their base facts), negation and
#: grouping turned up so stratified features are exercised often.
#: Backed by the seeded workload generator, so shrinking reduces to
#: smaller seeds rather than structurally smaller programs — acceptable
#: for differential tests whose failures are rerun by seed.
generated_programs = st.builds(
    lambda seed: random_program(
        seed,
        GeneratorConfig(negation_probability=0.4, grouping_probability=0.35),
    ),
    st.integers(min_value=0, max_value=100_000),
)


@st.composite
def update_scripts(draw, max_ops: int = 6):
    """A generated program plus an interleaved insert/delete script.

    Returns ``(generated, initial, ops)`` where ``initial`` is the
    subset of the generated EDB the model starts from and ``ops`` is a
    list of ``("add" | "remove", [atoms...])`` steps drawn from the
    same fact pool.  Removals are drawn twice as often as insertions so
    deletion paths (overdelete/rederive, negation flips, group
    shrinkage) dominate; atoms repeat across steps on purpose, so
    no-op inserts and deletes of absent facts occur too.
    """
    generated = draw(st.builds(
        lambda seed: random_program(
            seed,
            GeneratorConfig(
                negation_probability=0.4, grouping_probability=0.35
            ),
        ),
        st.integers(min_value=0, max_value=100_000),
    ))
    pool = list(dict.fromkeys(generated.edb))
    initial = pool[: draw(st.integers(min_value=0, max_value=len(pool)))]
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "remove"]),
                st.lists(
                    st.sampled_from(pool),
                    min_size=1,
                    max_size=4,
                    unique=True,
                ),
            ),
            max_size=max_ops,
        )
    )
    return generated, initial, ops
