"""Tests for built-in predicates (repro.engine.builtins, paper §2.2)."""

import pytest

from repro.engine.builtins import solve_builtin
from repro.errors import EvaluationError
from repro.parser import parse_atom, parse_term
from repro.terms.term import Const, SetVal


def solve(src, binding=None):
    atom = parse_atom(src)
    return list(solve_builtin(atom.pred, atom.args, binding or {}))


class TestMember:
    def test_enumerates_elements(self):
        bindings = solve("member(X, {1, 2, 3})")
        assert {b["X"].value for b in bindings} == {1, 2, 3}

    def test_tests_membership(self):
        assert solve("member(2, {1, 2})")
        assert not solve("member(5, {1, 2})")

    def test_member_of_empty_set(self):
        assert not solve("member(X, {})")

    def test_member_of_non_set_false(self):
        # Section 2.2: member is false when S is not a set.
        assert not solve("member(X, S)", {"S": Const(3)})

    def test_unbound_set_raises(self):
        with pytest.raises(EvaluationError):
            solve("member(1, S)")


class TestUnion:
    def test_computes_union(self):
        [b] = solve("union({1}, {2}, S)")
        assert b["S"] == parse_term("{1, 2}")

    def test_tests_union(self):
        assert solve("union({1}, {2}, {1, 2})")
        assert not solve("union({1}, {2}, {1, 2, 3})")

    def test_overlapping_operands(self):
        [b] = solve("union({1, 2}, {2, 3}, S)")
        assert b["S"] == parse_term("{1, 2, 3}")

    def test_decomposes_bound_union(self):
        bindings = solve("union(A, B, {1, 2})")
        pairs = {
            (frozenset(e.value for e in b["A"]), frozenset(e.value for e in b["B"]))
            for b in bindings
        }
        # every cover of {1,2} appears
        assert (frozenset({1}), frozenset({2})) in pairs
        assert (frozenset({1, 2}), frozenset({1, 2})) in pairs
        assert all(a | b == frozenset({1, 2}) for a, b in pairs)

    def test_completes_missing_operand(self):
        bindings = solve("union({1}, B, {1, 2})")
        options = {frozenset(e.value for e in b["B"]) for b in bindings}
        assert options == {frozenset({2}), frozenset({1, 2})}

    def test_operand_not_subset_fails(self):
        assert not solve("union({5}, B, {1, 2})")


class TestPartition:
    def test_enumerates_disjoint_splits(self):
        bindings = solve("partition({1, 2}, A, B)")
        pairs = {
            (frozenset(e.value for e in b["A"]), frozenset(e.value for e in b["B"]))
            for b in bindings
        }
        assert pairs == {
            (frozenset(), frozenset({1, 2})),
            (frozenset({1}), frozenset({2})),
            (frozenset({2}), frozenset({1})),
            (frozenset({1, 2}), frozenset()),
        }

    def test_recomposes_from_parts(self):
        [b] = solve("partition(S, {1}, {2})")
        assert b["S"] == parse_term("{1, 2}")

    def test_rejects_overlapping_parts(self):
        assert not solve("partition(S, {1, 2}, {2})")

    def test_all_bound_test(self):
        assert solve("partition({1, 2}, {1}, {2})")
        assert not solve("partition({1, 2}, {1}, {1, 2})")


class TestSubsetCard:
    def test_subset_test(self):
        assert solve("subset({1}, {1, 2})")
        assert not solve("subset({3}, {1, 2})")

    def test_subset_enumeration(self):
        bindings = solve("subset(S, {1, 2})")
        assert len(bindings) == 4

    def test_empty_set_subset_of_all(self):
        assert solve("subset({}, {})")

    def test_card(self):
        [b] = solve("card({1, 2, 3}, N)")
        assert b["N"] == Const(3)

    def test_card_test(self):
        assert solve("card({}, 0)")
        assert not solve("card({1}, 2)")


class TestEqualityAndComparisons:
    def test_eq_binds_left(self):
        [b] = solve("X = 1 + 2")
        assert b["X"] == Const(3)

    def test_eq_binds_right(self):
        [b] = solve("3 = X")
        assert b["X"] == Const(3)

    def test_eq_decomposes_set(self):
        bindings = solve("{X | R} = {1, 2}")
        assert len(bindings) == 2

    def test_eq_both_bound(self):
        assert solve("1 + 1 = 2")
        assert not solve("1 + 1 = 3")

    def test_eq_unbound_both_sides_raises(self):
        with pytest.raises(EvaluationError):
            solve("X = Y")

    def test_ne(self):
        assert solve("1 != 2")
        assert not solve("2 != 2")

    def test_ne_on_sets(self):
        assert solve("{1} != {}")

    def test_comparisons_numeric(self):
        assert solve("1 < 2")
        assert solve("2 <= 2")
        assert solve("3 > 2")
        assert solve("3 >= 3")
        assert not solve("2 < 1")

    def test_comparisons_strings(self):
        assert solve("a < b")

    def test_mixed_comparison_raises(self):
        with pytest.raises(EvaluationError):
            solve("a < 1")

    def test_comparison_of_sets_raises(self):
        with pytest.raises(EvaluationError):
            solve("{1} < {2}")

    def test_int_float_comparison_ok(self):
        assert solve("1 < 1.5")


class TestEnumerationCap:
    def test_subset_enumeration_cap(self):
        big = SetVal([Const(i) for i in range(25)])
        with pytest.raises(EvaluationError):
            solve("subset(S, B)", {"B": big})

    def test_unknown_builtin(self):
        with pytest.raises(EvaluationError):
            list(solve_builtin("frobnicate", (), {}))


class TestSetAlgebraExtensions:
    def test_intersection(self):
        [b] = solve("intersection({1, 2, 3}, {2, 3, 4}, S)")
        assert b["S"] == parse_term("{2, 3}")

    def test_intersection_test_mode(self):
        assert solve("intersection({1, 2}, {2}, {2})")
        assert not solve("intersection({1, 2}, {2}, {1})")

    def test_intersection_disjoint(self):
        [b] = solve("intersection({1}, {2}, S)")
        assert b["S"] == SetVal()

    def test_difference(self):
        [b] = solve("difference({1, 2, 3}, {2}, S)")
        assert b["S"] == parse_term("{1, 3}")

    def test_difference_of_non_set_false(self):
        assert not solve("difference(S, {1}, R)", {"S": Const(3)})

    def test_sum(self):
        [b] = solve("sum({1, 2, 3}, N)")
        assert b["N"] == Const(6)

    def test_sum_empty_is_zero(self):
        [b] = solve("sum({}, N)")
        assert b["N"] == Const(0)

    def test_sum_floats(self):
        [b] = solve("sum({1.5, 2.5}, N)")
        assert b["N"] == Const(4.0)

    def test_sum_non_numeric_raises(self):
        with pytest.raises(EvaluationError):
            solve("sum({a, b}, N)")

    def test_min_max(self):
        [b] = solve("min_of({3, 1, 2}, N)")
        assert b["N"] == Const(1)
        [b] = solve("max_of({3, 1, 2}, N)")
        assert b["N"] == Const(3)

    def test_min_of_empty_fails(self):
        assert not solve("min_of({}, N)")

    def test_aggregates_in_rules(self):
        from tests.helpers import facts_of, run

        result = run(
            """
            bag(a, {1, 2, 3}). bag(b, {10}).
            total(K, N) <- bag(K, S), sum(S, N).
            spread(K, D) <- bag(K, S), min_of(S, L), max_of(S, H), D = H - L.
            """
        )
        assert facts_of(result, "total") == {"total(a, 6)", "total(b, 10)"}
        assert facts_of(result, "spread") == {"spread(a, 2)", "spread(b, 0)"}
