"""Property-based tests for the §2.4 domination orders."""

from hypothesis import given
from hypothesis import strategies as st

from repro.program.rule import Atom
from repro.terms.domination import (
    element_dominated,
    fact_dominated,
    factset_dominated,
)

from tests.strategies import ground_sets, ground_terms

facts = st.builds(
    lambda args: Atom("p", args), st.lists(ground_terms, max_size=3).map(tuple)
)
set_facts = st.builds(lambda s: Atom("p", (s,)), ground_sets)


@given(ground_terms)
def test_element_domination_reflexive(term):
    assert element_dominated(term, term)


@given(ground_terms, ground_terms, ground_terms)
def test_element_domination_transitive(a, b, c):
    if element_dominated(a, b) and element_dominated(b, c):
        assert element_dominated(a, c)


@given(ground_sets, ground_sets)
def test_subset_implies_elaborate_domination(a, b):
    if a.elements <= b.elements:
        assert element_dominated(a, b)


@given(facts)
def test_fact_domination_reflexive(fact):
    assert fact_dominated(fact, fact)
    assert fact_dominated(fact, fact, elaborate=True)


@given(set_facts, set_facts, set_facts)
def test_fact_domination_transitive(a, b, c):
    if fact_dominated(a, b) and fact_dominated(b, c):
        assert fact_dominated(a, c)


@given(set_facts, set_facts)
def test_basic_fact_domination_antisymmetric(a, b):
    if fact_dominated(a, b) and fact_dominated(b, a):
        assert a == b


@given(set_facts, set_facts)
def test_basic_implies_elaborate(a, b):
    if fact_dominated(a, b):
        assert fact_dominated(a, b, elaborate=True)


@given(st.lists(set_facts, max_size=4))
def test_factset_domination_reflexive(pool):
    assert factset_dominated(pool, pool)


@given(st.lists(set_facts, max_size=4), st.lists(set_facts, max_size=3))
def test_factset_domination_monotone_in_target(a, extra):
    # enlarging the dominating side can never break domination
    if factset_dominated(a, a):
        assert factset_dominated(a, list(a) + list(extra))


@given(st.lists(set_facts, min_size=1, max_size=4))
def test_factset_domination_requires_enough_targets(pool):
    # the matching is injective, so |A| > |B| can never dominate
    distinct = list({fact for fact in pool})
    if len(distinct) >= 2:
        assert not factset_dominated(distinct, distinct[:1])
    assert not factset_dominated(distinct, [])


@given(st.lists(set_facts, max_size=4), st.lists(set_facts, max_size=4))
def test_factset_domination_sound(a, b):
    # whenever A <= B holds, every element of A is dominated by some
    # element of B (the matching's necessary condition).
    if factset_dominated(a, b):
        for fact in a:
            assert any(fact_dominated(fact, other) for other in b)
