"""Tests for the synthetic workload generators and their programs."""

from repro import LDL
from repro.workloads import (
    BOOK_DEAL_PROGRAM,
    BOOK_PAIR_PROGRAM,
    ORDERED_SUM_PROGRAM,
    SUPPLIER_PROGRAM,
    TC_PROGRAM,
    TC_SCOPED_PROGRAM,
    bom,
    books,
    chain_family,
    generation_family,
    random_family,
    supplies,
    tree_family,
)

ANCESTOR = """
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
"""


class TestFamilyGenerators:
    def test_chain_size_and_closure(self):
        facts = chain_family(10)
        assert len(facts) == 10
        db = LDL(ANCESTOR).add_atoms(facts)
        # transitive closure of a chain of n edges has n(n+1)/2 pairs
        assert len(db.extension("anc")) == 55

    def test_tree_counts(self):
        facts = tree_family(depth=3, fanout=2)
        assert len(facts) == 2 + 4 + 8

    def test_random_family_deterministic_and_acyclic(self):
        a = random_family(20, 30, seed=5)
        b = random_family(20, 30, seed=5)
        assert a == b
        for atom in a:
            parent, child = (arg.value for arg in atom.args)
            assert int(parent[1:]) < int(child[1:])

    def test_generation_family_structure(self):
        facts = generation_family(generations=3, width=2)
        parents = [a for a in facts if a.pred == "p"]
        siblings = [a for a in facts if a.pred == "siblings"]
        assert len(parents) == 2 * 2 * 2  # 2 gens of edges, 2 people, 2 each
        assert len(siblings) == 2  # width 2: each pair once per direction

    def test_generation_family_sg_plumbs_through(self):
        db = LDL(
            """
            sg(X, Y) <- siblings(X, Y).
            sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
            """
        ).add_atoms(generation_family(generations=3, width=3))
        # everyone in the last generation has some same-generation partner
        answers = db.query("? sg(g_2_0, Y).")
        assert answers


class TestPartsWorkload:
    def test_bom_counts(self):
        facts, expected = bom(depth=2, fanout=2, seed=0)
        p_facts = [a for a in facts if a.pred == "p"]
        q_facts = [a for a in facts if a.pred == "q"]
        assert len(p_facts) == 2 + 4
        assert len(q_facts) == 4
        assert len(expected) == 7

    def test_expected_costs_consistent(self):
        _, expected = bom(depth=2, fanout=2, seed=3)
        # root cost is the sum of its two children
        assert expected[1] == expected[3] + expected[4]

    def test_all_three_programs_agree(self):
        facts, expected = bom(depth=2, fanout=2, seed=9)
        for program, pred in (
            (TC_PROGRAM, "result"),
            (TC_SCOPED_PROGRAM, "result"),
            (ORDERED_SUM_PROGRAM, "result2"),
        ):
            db = LDL(program).add_atoms(facts)
            assert dict(db.extension(pred)) == expected, program

    def test_deterministic(self):
        assert bom(3, 2, seed=1) == bom(3, 2, seed=1)


class TestSupplierWorkload:
    def test_counts_and_grouping(self):
        facts = supplies(suppliers=5, parts_per_supplier=4, seed=2)
        assert len(facts) == 20
        db = LDL(SUPPLIER_PROGRAM).add_atoms(facts)
        groups = db.extension("supplier_parts")
        assert len(groups) == 5
        assert all(len(parts) == 4 for _, parts in groups)


class TestBooksWorkload:
    def test_deals_respect_budget(self):
        db = LDL(BOOK_PAIR_PROGRAM).add_atoms(books(12, seed=4))
        prices = dict(db.extension("book"))
        for (deal,) in db.extension("book_pair"):
            assert sum(prices[title] for title in deal) < 100

    def test_triple_deals_may_collapse(self):
        db = LDL(BOOK_DEAL_PROGRAM).add_atoms(books(6, max_price=40, seed=1))
        sizes = {len(deal) for (deal,) in db.extension("book_deal")}
        # singletons arise from X = Y = Z; the paper points this out
        assert 1 in sizes
        assert 3 in sizes


class TestSocialWorkload:
    def test_deterministic(self):
        from repro.workloads import social_network

        assert social_network(20, seed=1) == social_network(20, seed=1)

    def test_program_runs_end_to_end(self):
        from repro import LDL
        from repro.workloads import SOCIAL_PROGRAM, social_network

        db = LDL(SOCIAL_PROGRAM).add_atoms(social_network(25, seed=4))
        model = db.model()
        assert model.total_facts > 100
        # recommendations never include existing followees
        follows = {(a, b) for a, b in db.extension("follows")}
        for a, b in db.extension("recommend"):
            assert (a, b) not in follows
            assert a != b

    def test_audience_matches_follower_sets(self):
        from repro import LDL
        from repro.workloads import SOCIAL_PROGRAM, social_network

        db = LDL(SOCIAL_PROGRAM).add_atoms(social_network(25, seed=4))
        followers = dict(db.extension("followers"))
        for user, count in db.extension("audience"):
            assert len(followers[user]) == count

    def test_strategies_agree_on_social(self):
        from repro import LDL
        from repro.workloads import SOCIAL_PROGRAM, social_network

        db = LDL(SOCIAL_PROGRAM).add_atoms(social_network(20, seed=9))
        q = "? recommend(u1, B)."
        assert db.query(q) == db.query(q, strategy="magic")


class TestGeneratorReexports:
    def test_generator_available_from_workloads(self):
        from repro.workloads import GeneratorConfig, random_program

        generated = random_program(1, GeneratorConfig(strata=2))
        assert len(generated.program) > 0
