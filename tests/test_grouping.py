"""Unit tests for grouping-rule evaluation (repro.engine.grouping)."""

import pytest

from repro.engine.database import Database
from repro.engine.grouping import apply_grouping_rule, apply_grouping_rules
from repro.errors import EvaluationError
from repro.parser import parse_atom, parse_rule
from repro.terms.pretty import format_atom


def db_of(*sources):
    return Database(parse_atom(s) for s in sources)


def derived(rule_src, *facts):
    rule = parse_rule(rule_src)
    return {format_atom(a) for a in apply_grouping_rule(rule, db_of(*facts))}


class TestApplyGroupingRule:
    def test_basic_grouping(self):
        assert derived(
            "g(K, <V>) <- e(K, V).", "e(a, 1)", "e(a, 2)", "e(b, 3)"
        ) == {"g(a, {1, 2})", "g(b, {3})"}

    def test_group_position_first(self):
        assert derived(
            "g(<V>, K) <- e(K, V).", "e(a, 1)", "e(a, 2)"
        ) == {"g({1, 2}, a)"}

    def test_zero_other_args(self):
        assert derived("g(<V>) <- e(_, V).", "e(a, 1)", "e(b, 2)") == {
            "g({1, 2})"
        }

    def test_empty_body_solutions_yield_nothing(self):
        assert derived("g(K, <V>) <- e(K, V).") == set()

    def test_duplicate_values_collapse(self):
        assert derived(
            "g(K, <V>) <- e(K, V, _).", "e(a, 1, x)", "e(a, 1, y)"
        ) == {"g(a, {1})"}

    def test_key_is_interpreted_term(self):
        # keys are equivalence classes of *interpreted* head terms (§3.2)
        assert derived(
            "g(K + 0, <V>) <- e(K, V).", "e(1, a)", "e(1.0, b)"
        ) == {"g(1, {a})", "g(1.0, {b})"}

    def test_arithmetic_key_merges_classes(self):
        assert derived(
            "g(K * K, <V>) <- e(K, V).", "e(2, a)", "e(-2, b)"
        ) == {"g(4, {a, b})"}

    def test_functor_key(self):
        assert derived(
            "g(f(K), <V>) <- e(K, V).", "e(1, a)", "e(2, b)"
        ) == {"g(f(1), {a})", "g(f(2), {b})"}

    def test_grouping_set_values(self):
        assert derived(
            "g(K, <S>) <- e(K, S).", "e(a, {1})", "e(a, {2, 3})"
        ) == {"g(a, {{1}, {2, 3}})"}

    def test_body_with_builtins(self):
        assert derived(
            "g(K, <V>) <- e(K, V), V > 1.", "e(a, 1)", "e(a, 2)", "e(a, 3)"
        ) == {"g(a, {2, 3})"}

    def test_body_with_negation(self):
        # extended grouping bodies (the §6 running example's shape)
        assert derived(
            "g(K, <V>) <- e(K, V), ~bad(V).",
            "e(a, 1)", "e(a, 2)", "bad(2)",
        ) == {"g(a, {1})"}

    def test_non_variable_group_rejected(self):
        rule = parse_rule("g(K, <f(V)>) <- e(K, V).")
        with pytest.raises(EvaluationError):
            list(apply_grouping_rule(rule, db_of("e(a, 1)")))

    def test_multiple_group_terms_rejected(self):
        rule = parse_rule("g(<K>, <V>) <- e(K, V).")
        with pytest.raises(EvaluationError):
            list(apply_grouping_rule(rule, db_of("e(a, 1)")))


class TestApplyGroupingRules:
    def test_several_rules_combined(self):
        rules = [
            parse_rule("by_key(K, <V>) <- e(K, V)."),
            parse_rule("by_val(V, <K>) <- e(K, V)."),
        ]
        facts = apply_grouping_rules(rules, db_of("e(a, 1)", "e(b, 1)"))
        rendered = {format_atom(a) for a in facts}
        assert "by_key(a, {1})" in rendered
        assert "by_val(1, {a, b})" in rendered

    def test_no_rules(self):
        assert apply_grouping_rules([], db_of("e(a, 1)")) == []
