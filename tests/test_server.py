"""Tests for the concurrent TCP server (repro.server)."""

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import LDL
from repro.errors import ProtocolError, ServerError
from repro.server import Client, LDLServer, ReadWriteLock
from repro.server import protocol

ROOT = Path(__file__).resolve().parents[1]

TC_PROGRAM = """
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
"""


def norm(answers):
    """Order-independent form of a query answer list."""
    return sorted(tuple(sorted(b.items())) for b in answers)


class ServerThread:
    """An LDLServer running on a background event-loop thread."""

    def __init__(self, session, **kwargs):
        kwargs.setdefault("port", 0)
        self.server = LDLServer(session, **kwargs)
        self._started = threading.Event()
        self._failure = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by __enter__/__exit__
            self._failure = exc
            self._started.set()

    async def _main(self):
        await self.server.start()
        self._started.set()
        # signal handlers only work on the main thread
        await self.server.serve(handle_signals=False)

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(10), "server did not start"
        if self._failure is not None:
            raise self._failure
        return self

    def __exit__(self, *exc):
        self.server.request_stop()
        self._thread.join(10)
        assert not self._thread.is_alive(), "server did not shut down"
        if self._failure is not None:
            raise self._failure

    @property
    def port(self):
        return self.server.port

    def client(self, **kwargs):
        return Client("127.0.0.1", self.port, **kwargs)


class TestProtocol:
    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request(b"? anc(ann, X).\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request(b"[1, 2]\n")

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request(b'{"op": "drop_tables"}\n')

    def test_binding_roundtrip(self):
        from repro.api import to_term

        binding = {"X": to_term(("a", frozenset({1, 2})))}
        assert protocol.decode_binding(
            json.loads(json.dumps(protocol.encode_binding(binding)))
        ) == binding

    def test_error_response_echoes_id(self):
        out = protocol.error_response({"id": 7}, ValueError("boom"))
        assert out == {
            "ok": False, "error": "boom", "etype": "ValueError", "id": 7,
        }


class TestReadWriteLock:
    def test_readers_overlap_writer_exclusive(self):
        async def main():
            lock = ReadWriteLock()
            peak_readers = 0
            writes = 0

            async def reader():
                nonlocal peak_readers
                async with lock.read():
                    peak_readers = max(peak_readers, lock.readers)
                    assert not lock.writer_active
                    await asyncio.sleep(0.01)

            async def writer():
                nonlocal writes
                async with lock.write():
                    assert lock.readers == 0
                    assert lock.writer_active
                    writes += 1
                    await asyncio.sleep(0.01)

            await asyncio.gather(
                reader(), reader(), writer(), reader(), writer()
            )
            assert peak_readers >= 2
            assert writes == 2
            assert lock.readers == 0 and not lock.writer_active

        asyncio.run(main())

    def test_waiting_writer_blocks_new_readers(self):
        async def main():
            lock = ReadWriteLock()
            order = []

            async def long_reader():
                async with lock.read():
                    order.append("r1")
                    await asyncio.sleep(0.05)

            async def writer():
                await asyncio.sleep(0.01)  # let the reader in first
                async with lock.write():
                    order.append("w")

            async def late_reader():
                await asyncio.sleep(0.02)  # after the writer queued
                async with lock.read():
                    order.append("r2")

            await asyncio.gather(long_reader(), writer(), late_reader())
            # writer preference: r2 arrived while w waited, so w goes first
            assert order == ["r1", "w", "r2"]

        asyncio.run(main())


class TestServerRequests:
    def test_basic_ops(self):
        session = LDL(TC_PROGRAM)
        with ServerThread(session) as st, st.client() as client:
            assert client.ping()
            assert client.add_facts("e", [(1, 2), (2, 3)]) == 2
            assert client.query("? t(1, X).") == [{"X": 2}, {"X": 3}]
            assert client.query("? t(1, X).", strategy="magic") == [
                {"X": 2}, {"X": 3},
            ]
            assert "t(1, 3)" in client.explain("t(1, 3)")
            assert client.remove_facts("e", [(2, 3)]) == 1
            assert client.query("? t(1, X).") == [{"X": 2}]

    def test_request_failure_keeps_connection(self):
        with ServerThread(LDL(TC_PROGRAM)) as st, st.client() as client:
            with pytest.raises(ServerError) as exc_info:
                client.query("this is not a query")
            assert exc_info.value.etype == "ParseError"
            with pytest.raises(ServerError):
                client.call("query")  # missing 'q'
            with pytest.raises(ServerError) as exc_info:
                client.checkpoint()  # no --db behind this session
            assert exc_info.value.etype == "EvaluationError"
            assert client.ping()  # connection still serving

    def test_malformed_line_gets_error_response(self):
        with ServerThread(LDL(TC_PROGRAM)) as st:
            with socket.create_connection(("127.0.0.1", st.port), 5) as sock:
                f = sock.makefile("rwb")
                f.write(b"not json\n")
                f.flush()
                response = json.loads(f.readline())
                assert response["ok"] is False
                assert response["etype"] == "ProtocolError"
                # the connection survives a malformed line
                f.write(b'{"op": "ping"}\n')
                f.flush()
                assert json.loads(f.readline())["ok"] is True

    def test_oversized_request_rejected(self):
        with ServerThread(
            LDL(TC_PROGRAM), max_request_bytes=256
        ) as st:
            with socket.create_connection(("127.0.0.1", st.port), 5) as sock:
                f = sock.makefile("rwb")
                f.write(b'{"op": "query", "q": "' + b"x" * 1024 + b'"}\n')
                f.flush()
                response = json.loads(f.readline())
                assert response["ok"] is False
                assert "256 bytes" in response["error"]
                assert f.readline() == b""  # server hung up

    def test_stats_op(self):
        session = LDL(TC_PROGRAM)
        with ServerThread(session) as st, st.client() as client:
            client.add_facts("e", [(1, 2)])
            client.query("? t(X, Y).")
            stats = client.stats()
            server = stats["server"]
            assert server["requests"]["add_facts"] == 1
            assert server["requests"]["query"] == 1
            # the stats request itself is counted as started
            assert server["in_flight"] == 1
            assert server["connections_opened"] == 1
            assert server["latency"]["count"] == 2
            assert server["errors_total"] == 0
            assert stats["session"]["rules"] == 2
            assert stats["session"]["edb_facts"] == 1
            assert stats["session"]["durable"] is False

    def test_request_timeout(self):
        with ServerThread(
            LDL(TC_PROGRAM), request_timeout=0.0
        ) as st, st.client() as client:
            with pytest.raises(ServerError) as exc_info:
                client.query("? t(X, Y).")
            assert exc_info.value.etype == "TimeoutError"


class TestConcurrency:
    WRITERS = 4
    READERS = 4
    ROWS_PER_WRITER = 6

    def test_interleaved_clients_consistent_with_scratch_eval(self):
        """≥ 8 concurrent clients; answers match a from-scratch run."""
        session = LDL(TC_PROGRAM)
        errors = []
        start = threading.Barrier(self.WRITERS + self.READERS)

        def writer(st, i):
            try:
                with st.client() as client:
                    start.wait(10)
                    base = i * 100
                    for k in range(self.ROWS_PER_WRITER):
                        client.add_facts("e", [(base + k, base + k + 1)])
                        # read-your-writes through the shared model
                        assert {"Y": base + k + 1} in client.query(
                            f"? t({base + k}, Y)."
                        )
                    # removals interleave too; deterministic final EDB
                    client.remove_facts("e", [(base, base + 1)])
            except Exception as exc:  # noqa: BLE001 - reported by main thread
                errors.append(exc)

        def reader(st):
            try:
                with st.client() as client:
                    start.wait(10)
                    for _ in range(8):
                        for binding in client.query("? e(X, Y)."):
                            assert binding["Y"] == binding["X"] + 1
                        client.query("? t(X, 103).", strategy="magic")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        with ServerThread(session) as st:
            threads = [
                threading.Thread(target=writer, args=(st, i))
                for i in range(self.WRITERS)
            ] + [
                threading.Thread(target=reader, args=(st,))
                for _ in range(self.READERS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not errors, errors
            with st.client() as client:
                served = client.query("? t(X, Y).")
                stats = client.stats()

        # the final EDB is deterministic: every row each writer added,
        # minus the one it removed
        fresh = LDL(TC_PROGRAM)
        for i in range(self.WRITERS):
            base = i * 100
            fresh.facts(
                "e",
                [
                    (base + k, base + k + 1)
                    for k in range(1, self.ROWS_PER_WRITER)
                ],
            )
        assert norm(served) == norm(fresh.query("? t(X, Y)."))
        assert stats["server"]["in_flight"] == 1  # just the stats call
        assert stats["server"]["errors_total"] == 0


class SlowReadSession(LDL):
    """A session whose model access stalls — a deliberately slow query."""

    read_delay = 0.6

    def model(self, strategy="seminaive"):
        time.sleep(self.read_delay)
        return super().model(strategy)


class SlowWriteSession(LDL):
    """A session that applies a multi-atom batch with a stall inside,
    so a cancelled-but-still-running mutation has a wide window in
    which readers could observe the half-applied batch."""

    write_delay = 0.8

    def add_atoms(self, atoms):
        atoms = list(atoms)
        for i, atom in enumerate(atoms):
            if i:
                time.sleep(self.write_delay)
            super().add_atoms([atom])
        return self


class TestConsistencyBugfixes:
    """Regression tests for the drain/timeout consistency bugs.

    Each of these fails on the pre-fix server: the drain loop polled a
    counter nothing incremented, a write timeout released the lock
    while the mutation kept running in its executor thread, and a
    client-side socket timeout left the connection desynchronized.
    """

    def test_graceful_drain_completes_inflight_query(self):
        """request_stop() must not close a connection mid-request."""
        session = SlowReadSession(TC_PROGRAM)
        session.facts("e", [(1, 2)])
        answers = []
        failures = []

        with ServerThread(session, cache=None, shutdown_grace=10.0) as st:
            def slow_query():
                try:
                    with st.client() as client:
                        answers.append(client.query("? t(1, X)."))
                except Exception as exc:  # noqa: BLE001 - asserted below
                    failures.append(exc)

            t = threading.Thread(target=slow_query)
            t.start()
            time.sleep(0.2)  # the query is now in flight
            st.server.request_stop()
            t.join(10)
        assert not failures, failures
        assert answers == [[{"X": 2}]]

    def test_write_timeout_never_exposes_half_applied_batch(self):
        """A write outliving the request budget still applies atomically.

        The budget bounds waiting for the write lock; once the mutation
        runs, the lock is held to completion and the response reports
        the true outcome.  Readers must only ever observe 0 or 2 of the
        2-row batch — 1 means the timeout released the lock under a
        live mutation.
        """
        session = SlowWriteSession(TC_PROGRAM)
        observed = set()
        write_response = {}
        reader_failures = []

        with ServerThread(
            session, cache=None, request_timeout=0.25
        ) as st:
            def writer():
                with st.client(timeout=30) as client:
                    write_response["count"] = client.add_facts(
                        "e", [(1, 2), (2, 3)]
                    )

            def reader():
                try:
                    with st.client(timeout=30) as client:
                        deadline = time.time() + 3
                        while time.time() < deadline:
                            try:
                                rows = client.query("? e(X, Y).")
                            except ServerError as exc:
                                # blocked behind the held write lock
                                # past the read budget: retry
                                assert exc.etype == "TimeoutError"
                                continue
                            observed.add(len(rows))
                            if len(rows) == 2:
                                return
                            time.sleep(0.01)
                except Exception as exc:  # noqa: BLE001
                    reader_failures.append(exc)

            threads = [
                threading.Thread(target=writer),
                threading.Thread(target=reader),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
        assert not reader_failures, reader_failures
        # the true outcome, not a "timed out but maybe applied" lie
        assert write_response == {"count": 2}
        assert 1 not in observed, f"reader saw a torn batch: {observed}"
        assert 2 in observed

    def test_client_timeout_poisons_connection(self):
        """A timed-out client call raises ProtocolError and the
        connection refuses further use instead of desyncing."""
        session = SlowReadSession(TC_PROGRAM)
        session.facts("e", [(1, 2)])
        with ServerThread(session, cache=None) as st:
            client = st.client(timeout=0.2)
            try:
                with pytest.raises(ProtocolError) as exc_info:
                    client.query("? t(1, X).")
                assert "timed out" in str(exc_info.value)
                # the late response is unreadable: the connection is
                # poisoned, not silently reused
                with pytest.raises(ProtocolError) as exc_info:
                    client.ping()
                assert "poisoned" in str(exc_info.value)
            finally:
                client.close()

    def test_client_rejects_idless_response(self):
        """An id-less response never matches a pending request."""
        with ServerThread(LDL(TC_PROGRAM)) as st:
            with st.client() as client:
                # desync the stream: the server answers this garbage
                # line with an id-less error response
                client._file.write(b"not json\n")
                client._file.flush()
                with pytest.raises(ProtocolError):
                    client.ping()  # reads the id-less error
                with pytest.raises(ProtocolError):
                    client.ping()  # and the connection is now poisoned


def start_serve(tmp_path, *extra, fsync="always"):
    """Launch ``repro serve`` as a subprocess; returns (proc, port)."""
    program = tmp_path / "prog.ldl"
    if not program.exists():
        program.write_text(TC_PROGRAM)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(program),
            "--port", "0", "--db", str(tmp_path / "db"),
            "--fsync", fsync, *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    banner = []
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        match = re.search(r"% serving on [^:]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise AssertionError(f"server did not come up:\n{''.join(banner)}")


class TestDurableServer:
    def test_sigterm_checkpoints_then_restart_restores_snapshot(
        self, tmp_path
    ):
        proc, port = start_serve(tmp_path)
        try:
            with Client("127.0.0.1", port) as client:
                client.add_facts("e", [(1, 2), (2, 3)])
                assert client.query("? t(1, X).") == [{"X": 2}, {"X": 3}]
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out
        assert "% shutdown: durable session checkpointed" in out

        # the restarted server restores from the snapshot — no WAL replay
        proc2, port2 = start_serve(tmp_path)
        try:
            with Client("127.0.0.1", port2) as client:
                assert client.query("? t(1, X).") == [{"X": 2}, {"X": 3}]
                store = client.stats()["session"]["store"]
                assert store["restore_mode"] == "snapshot"
                assert store["wal_records_replayed"] == 0
        finally:
            proc2.send_signal(signal.SIGTERM)
            proc2.communicate(timeout=30)

    def test_sigkill_mid_traffic_recovers_via_wal(self, tmp_path):
        proc, port = start_serve(tmp_path)
        acknowledged = []
        try:
            with Client("127.0.0.1", port) as client:
                for k in range(25):
                    client.add_facts("e", [(k, k + 1)])
                    acknowledged.append((k, k + 1))
                    if k == 17:
                        proc.kill()  # SIGKILL: no checkpoint, WAL only
                        break
        except (ProtocolError, OSError):
            pass  # the kill may race the next request
        proc.communicate(timeout=30)
        assert acknowledged, "no write was acknowledged before the kill"

        # every acknowledged write must survive via WAL replay
        with LDL(TC_PROGRAM, path=str(tmp_path / "db")) as revived:
            assert revived.store.stats.wal_records_replayed > 0
            rows = {
                (b["X"], b["Y"]) for b in revived.query("? e(X, Y).")
            }
            assert set(acknowledged) <= rows
