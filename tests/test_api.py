"""Tests for the high-level session API (repro.api)."""

import pytest
from hypothesis import given

from repro import LDL, from_term, to_term
from repro.errors import EvaluationError
from repro.program.rule import Atom
from repro.terms.term import Const, Func, mkset

from tests.strategies import python_values


class TestValueConversion:
    def test_scalars(self):
        assert to_term(3) == Const(3)
        assert to_term("a") == Const("a")
        assert to_term(2.5) == Const(2.5)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            to_term(True)

    def test_sets(self):
        assert to_term({1, 2}) == mkset([Const(1), Const(2)])
        assert to_term(frozenset({"a"})) == mkset([Const("a")])

    def test_nested_sets(self):
        assert to_term(frozenset({frozenset({1})})) == mkset(
            [mkset([Const(1)])]
        )

    def test_tuples(self):
        assert to_term((1, "a")) == Func("tuple", (Const(1), Const("a")))

    def test_one_tuple_stays_tuple(self):
        # regression: 1-tuples used to collapse to their bare element,
        # breaking the from_term round trip.
        assert to_term(("a",)) == Func("tuple", (Const("a"),))
        assert to_term(("a",)) != to_term("a")
        assert from_term(to_term(("a",))) == ("a",)

    def test_empty_tuple_rejected(self):
        with pytest.raises(TypeError):
            to_term(())

    def test_terms_pass_through(self):
        term = Const("x")
        assert to_term(term) is term

    def test_roundtrip(self):
        values = [3, "sym", 2.5, frozenset({1, 2}), (1, 2), frozenset()]
        for value in values:
            assert from_term(to_term(value)) == value

    def test_from_term_compound_stays_term(self):
        term = Func("f", (Const(1),))
        assert from_term(term) == term

    @given(python_values)
    def test_roundtrip_property(self, value):
        term = to_term(value)
        assert term.is_ground()
        assert from_term(term) == value


class TestSession:
    def test_quickstart_flow(self):
        db = LDL(
            """
            ancestor(X, Y) <- parent(X, Y).
            ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
            """
        )
        db.facts("parent", [("ann", "bob"), ("bob", "carl")])
        answers = db.query("? ancestor(ann, X).")
        assert answers == [{"X": "bob"}, {"X": "carl"}]

    def test_strategies_agree(self):
        db = LDL(
            """
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            """
        )
        db.facts("parent", [(i, i + 1) for i in range(10)])
        q = "? anc(0, X)."
        naive = db.query(q, strategy="naive")
        semi = db.query(q, strategy="seminaive")
        magic = db.query(q, strategy="magic")
        assert naive == semi == magic

    def test_fact_single(self):
        db = LDL("q(X) <- p(X).")
        db.fact("p", 1)
        assert db.extension("q") == [(1,)]

    def test_set_valued_facts(self):
        db = LDL("big(K) <- s(K, S), card(S, N), N >= 2.")
        db.fact("s", "a", {1, 2})
        db.fact("s", "b", {3})
        assert db.extension("big") == [("a",)]

    def test_extension_returns_python_values(self):
        db = LDL("g(K, <V>) <- e(K, V).")
        db.facts("e", [("k", 1), ("k", 2)])
        assert db.extension("g") == [("k", frozenset({1, 2}))]

    def test_incremental_loading_invalidates_cache(self):
        db = LDL("q(X) <- p(X).")
        db.fact("p", 1)
        assert db.query("? q(X).") == [{"X": 1}]
        db.fact("p", 2)
        assert db.query("? q(X).") == [{"X": 1}, {"X": 2}]

    def test_model_caching(self):
        db = LDL("q(X) <- p(X).").fact("p", 1)
        first = db.model()
        assert db.model() is first

    def test_magic_via_model_rejected(self):
        db = LDL("q(X) <- p(X).").fact("p", 1)
        with pytest.raises(EvaluationError):
            db.model(strategy="magic")

    def test_pending_queries(self):
        db = LDL("p(1). p(2). q(X) <- p(X). ? q(X).")
        [(query, answers)] = db.run_pending_queries()
        assert answers == [{"X": 1}, {"X": 2}]

    def test_ldl15_session(self):
        db = LDL("out(T, <S>, <D>) <- r(T, S, D).", ldl15=True)
        db.facts("r", [("t", "s1", "mon"), ("t", "s2", "tue")])
        assert db.extension("out") == [
            ("t", frozenset({"s1", "s2"}), frozenset({"mon", "tue"}))
        ]

    def test_alternative_semantics_flag(self):
        rows = [("t1", "s1", "mon"), ("t2", "s1", "tue")]
        default = LDL("out(T, <h(S, <D>)>) <- r(T, S, D).", ldl15=True)
        default.facts("r", rows)
        alt = LDL(
            "out(T, <h(S, <D>)>) <- r(T, S, D).",
            ldl15=True,
            alternative_semantics=True,
        )
        alt.facts("r", rows)
        assert default.extension("out") != alt.extension("out")

    def test_query_magic_result_object(self):
        db = LDL(
            """
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            """
        )
        db.facts("parent", [("a", "b"), ("b", "c")])
        result = db.query_magic("? anc(a, X).")
        assert result.stats.phases >= 1
        assert len(result.answer_atoms()) == 2

    def test_repr(self):
        db = LDL("q(X) <- p(X).").fact("p", 1)
        assert "1 rules" in repr(db)

    def test_noncanonical_atoms_canonicalized_everywhere(self, tmp_path):
        # regression: evaluate() used to store EDB atoms verbatim while
        # the durable path normalized through evaluate_ground, so the
        # same session computed different models in-memory vs durable.
        atom = Atom("p", (Func("+", (Const(1), Const(2))),))
        mem = LDL("q(X) <- p(X).")
        mem.add_atoms([atom])
        assert mem.extension("q") == [(3,)]
        assert mem.query("? q(3).", strategy="magic") == [{}]
        with LDL("q(X) <- p(X).", path=str(tmp_path / "db")) as dur:
            dur.add_atoms([atom])
            assert dur.extension("q") == mem.extension("q")
