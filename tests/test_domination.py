"""Tests for domination orders (repro.terms.domination, paper §2.4)."""

from repro.program.rule import Atom
from repro.terms.domination import (
    element_dominated,
    fact_dominated,
    factset_dominated,
)
from repro.terms.term import Const, Func, mkset


def atom(pred, *args):
    return Atom(pred, args)


class TestBasicFactDomination:
    def test_equal_facts_dominate(self):
        a = atom("p", Const(1), mkset([Const(1)]))
        assert fact_dominated(a, a)

    def test_subset_argument(self):
        small = atom("p", mkset([Const(1)]))
        large = atom("p", mkset([Const(1), Const(2)]))
        assert fact_dominated(small, large)
        assert not fact_dominated(large, small)

    def test_non_set_argument_must_be_equal(self):
        assert not fact_dominated(atom("p", Const(1)), atom("p", Const(2)))

    def test_different_predicates_incomparable(self):
        assert not fact_dominated(atom("p", Const(1)), atom("q", Const(1)))

    def test_different_arities_incomparable(self):
        assert not fact_dominated(
            atom("p", Const(1)), atom("p", Const(1), Const(2))
        )

    def test_mixed_arguments(self):
        small = atom("p", Const("a"), mkset([Const(1)]))
        large = atom("p", Const("a"), mkset([Const(1), Const(2)]))
        assert fact_dominated(small, large)

    def test_paper_example_2_4(self):
        # M2 - M1 = {p({1})} <= {p({1,2}), q(1)} = M1 - M2.
        m2_minus_m1 = [atom("p", mkset([Const(1)]))]
        m1_minus_m2 = [
            atom("p", mkset([Const(1), Const(2)])),
            atom("q", Const(2)),
        ]
        assert factset_dominated(m2_minus_m1, m1_minus_m2)
        assert not factset_dominated(m1_minus_m2, m2_minus_m1)


class TestElaborateElementDomination:
    def test_reflexive(self):
        t = Func("f", [mkset([Const(1)])])
        assert element_dominated(t, t)

    def test_functor_argwise(self):
        small = Func("f", [mkset([Const(1)])])
        large = Func("f", [mkset([Const(1), Const(2)])])
        assert element_dominated(small, large)

    def test_set_coverage(self):
        # every element of the smaller set dominated by one of the larger
        small = mkset([mkset([Const(1)])])
        large = mkset([mkset([Const(1), Const(2)])])
        assert element_dominated(small, large)

    def test_constants_incomparable_unless_equal(self):
        assert not element_dominated(Const(1), Const(2))

    def test_functor_mismatch(self):
        assert not element_dominated(
            Func("f", [Const(1)]), Func("g", [Const(1)])
        )

    def test_elaborate_fact_domination(self):
        small = atom("p", Func("f", [mkset([Const(1)])]))
        large = atom("p", Func("f", [mkset([Const(1), Const(2)])]))
        assert fact_dominated(small, large, elaborate=True)
        # basic domination requires equality for non-set arguments:
        assert not fact_dominated(small, large, elaborate=False)


class TestFactsetDomination:
    def test_empty_set_always_dominated(self):
        assert factset_dominated([], [atom("p", Const(1))])
        assert factset_dominated([], [])

    def test_larger_set_cannot_be_dominated_by_smaller(self):
        a = [atom("p", Const(1)), atom("q", Const(1))]
        b = [atom("p", Const(1))]
        assert not factset_dominated(a, b)

    def test_injective_matching_required(self):
        # Two facts both only dominated by the same single target fact:
        # the matching must be injective, so domination fails.
        a = [
            atom("p", mkset([Const(1)])),
            atom("p", mkset([Const(2)])),
        ]
        b = [atom("p", mkset([Const(1), Const(2)]))]
        assert not factset_dominated(a, b)

    def test_matching_found_with_two_targets(self):
        a = [
            atom("p", mkset([Const(1)])),
            atom("p", mkset([Const(2)])),
        ]
        b = [
            atom("p", mkset([Const(1), Const(3)])),
            atom("p", mkset([Const(2), Const(3)])),
        ]
        assert factset_dominated(a, b)

    def test_cross_matching(self):
        # a1 fits only b2, a2 fits b1 and b2 — matching must route a2 to b1.
        a1 = atom("p", mkset([Const(1), Const(2)]))
        a2 = atom("p", mkset([Const(1)]))
        b1 = atom("p", mkset([Const(1), Const(3)]))
        b2 = atom("p", mkset([Const(1), Const(2), Const(3)]))
        assert factset_dominated([a1, a2], [b1, b2])

    def test_custom_dominates_predicate(self):
        a = [atom("p", Const(1))]
        b = [atom("p", Const(2))]
        assert factset_dominated(a, b, dominates=lambda x, y: True)
        assert not factset_dominated(a, b)
