"""Tests for the parser (repro.parser.parser)."""

import pytest

from repro.errors import ParseError
from repro.parser import (
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
    parse_rules,
    parse_term,
)
from repro.program.rule import Atom
from repro.terms.term import (
    Const,
    Func,
    GroupTerm,
    SetPattern,
    SetVal,
    Var,
    mkset,
)


class TestTerms:
    def test_constants(self):
        assert parse_term("foo") == Const("foo")
        assert parse_term("42") == Const(42)
        assert parse_term("3.5") == Const(3.5)
        assert parse_term("'hi there'") == Const("hi there", quoted=True)

    def test_variables(self):
        assert parse_term("X") == Var("X")
        assert parse_term("_foo") == Var("_foo")

    def test_anonymous_variables_distinct(self):
        rule = parse_rule("p(X) <- q(_, X), r(_, X).")
        anon = [v for v in rule.variables() if v.startswith("_Anon")]
        assert len(anon) == 2

    def test_compound(self):
        assert parse_term("f(a, X)") == Func("f", [Const("a"), Var("X")])

    def test_nested_compound(self):
        assert parse_term("f(g(h(1)))") == Func(
            "f", [Func("g", [Func("h", [Const(1)])])]
        )

    def test_empty_set(self):
        assert parse_term("{}") == SetVal()

    def test_ground_set_literal(self):
        assert parse_term("{1, 2}") == mkset([Const(1), Const(2)])

    def test_ground_set_dedup(self):
        assert parse_term("{1, 1}") == mkset([Const(1)])

    def test_nonground_set_pattern(self):
        term = parse_term("{X, 2}")
        assert isinstance(term, SetPattern)

    def test_set_with_rest(self):
        term = parse_term("{X | R}")
        assert isinstance(term, SetPattern)
        assert term.rest == Var("R")

    def test_nested_sets(self):
        assert parse_term("{{1}, {}}") == mkset([mkset([Const(1)]), SetVal()])

    def test_group_term(self):
        assert parse_term("<X>") == GroupTerm(Var("X"))

    def test_nested_group_term(self):
        term = parse_term("<h(Y, <Z>)>")
        assert term == GroupTerm(Func("h", [Var("Y"), GroupTerm(Var("Z"))]))

    def test_arithmetic_precedence(self):
        term = parse_term("X + Y * Z")
        assert term == Func("+", [Var("X"), Func("*", [Var("Y"), Var("Z")])])

    def test_parenthesized(self):
        term = parse_term("(X + Y) * Z")
        assert term == Func("*", [Func("+", [Var("X"), Var("Y")]), Var("Z")])

    def test_ground_arithmetic_folds(self):
        assert parse_term("1 + 2 * 3") == Const(7)

    def test_negative_number(self):
        assert parse_term("-4") == Const(-4)

    def test_mod_operator(self):
        assert parse_term("X mod 2") == Func("mod", [Var("X"), Const(2)])


class TestAtomsAndLiterals:
    def test_plain_atom(self):
        assert parse_atom("p(X, a)") == Atom("p", [Var("X"), Const("a")])

    def test_zero_arity_atom(self):
        assert parse_atom("halt") == Atom("halt", ())

    def test_comparison_atom(self):
        assert parse_atom("X < 3") == Atom("<", [Var("X"), Const(3)])

    def test_equality_with_expression(self):
        atom = parse_atom("C = C1 + C2")
        assert atom == Atom("=", [Var("C"), Func("+", [Var("C1"), Var("C2")])])

    def test_comparison_of_expressions(self):
        atom = parse_atom("Px + Py < 100")
        assert atom.pred == "<"

    def test_number_alone_is_not_atom(self):
        with pytest.raises(ParseError):
            parse_atom("42")


class TestRules:
    def test_fact(self):
        rule = parse_rule("parent(a, b).")
        assert rule.is_fact()
        assert rule.head == Atom("parent", [Const("a"), Const("b")])

    def test_rule_with_body(self):
        rule = parse_rule("p(X) <- q(X), r(X).")
        assert len(rule.body) == 2
        assert all(lit.positive for lit in rule.body)

    def test_negation_tilde(self):
        rule = parse_rule("p(X) <- q(X), ~r(X).")
        assert rule.body[1].negative

    def test_negation_keyword(self):
        rule = parse_rule("p(X) <- q(X), not r(X).")
        assert rule.body[1].negative

    def test_not_as_predicate_name_left_intact(self):
        # 'not' immediately before '(' cannot be parsed as a predicate in
        # our grammar; 'not r(X)' is negation.  But a predicate named
        # 'nothing' must not trigger the keyword.
        rule = parse_rule("p(X) <- nothing(X).")
        assert rule.body[0].positive
        assert rule.body[0].atom.pred == "nothing"

    def test_grouping_rule(self):
        rule = parse_rule("part(P, <S>) <- p(P, S).")
        assert rule.is_grouping()
        assert rule.head.args[1] == GroupTerm(Var("S"))

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) <- q(X)")

    def test_rule_roundtrip_equality(self):
        a = parse_rule("p(X) <- q(X), ~r(X).")
        b = parse_rule("p(X)  <-  q(X) , not r(X) .")
        assert a == b


class TestProgramsAndQueries:
    def test_program_with_queries(self):
        parsed = parse_program("p(1). q(X) <- p(X). ? q(X).")
        assert len(parsed.program) == 2
        assert len(parsed.queries) == 1

    def test_query_forms(self):
        assert parse_query("? p(X).") == parse_query("p(X)")
        assert parse_query("?- p(X).") == parse_query("? p(X).")

    def test_query_adornment(self):
        assert parse_query("? young(john, S).").adornment() == "bf"
        assert parse_query("? p(X, a, Y).").adornment() == "fbf"

    def test_parse_rules_rejects_queries(self):
        with pytest.raises(ParseError):
            parse_rules("p(1). ? p(X).")

    def test_empty_program(self):
        parsed = parse_program("  % nothing here\n")
        assert len(parsed.program) == 0

    def test_paper_intro_programs_parse(self):
        src = """
        ancestor(X, Y) <- ancestor(X, Z), parent(Z, Y).
        ancestor(X, Y) <- parent(X, Y).
        excl_ancestor(X, Y, Z) <- ancestor(X, Y), ~ancestor(X, Z).
        book_deal({X, Y, Z}) <- book(X, Px), book(Y, Py), book(Z, Pz),
                                Px + Py + Pz < 100.
        part(P, <S>) <- p(P, S).
        """
        parsed = parse_program(src)
        assert len(parsed.program) == 5
