"""Integration tests for bottom-up evaluation (paper §3.2, Theorem 1)."""

import pytest

from repro.engine import evaluate
from repro.errors import EvaluationError, NotAdmissibleError
from repro.parser import parse_program, parse_query
from repro.program.stratify import linear_layerings
from repro.terms.term import Const

from tests.helpers import facts_of, run


class TestSimplePrograms:
    def test_transitive_closure(self, ancestor_program):
        result = run(ancestor_program)
        assert facts_of(result, "ancestor") == {
            "ancestor(a, b)",
            "ancestor(a, c)",
            "ancestor(a, d)",
            "ancestor(b, c)",
            "ancestor(b, d)",
            "ancestor(c, d)",
        }

    def test_naive_equals_seminaive(self, ancestor_program):
        naive = run(ancestor_program, strategy="naive")
        semi = run(ancestor_program, strategy="seminaive")
        assert naive.database == semi.database

    def test_seminaive_fires_fewer_rules(self):
        chain = "".join(f"e({i}, {i + 1}). " for i in range(30))
        src = chain + "t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y)."
        naive = run(src, strategy="naive")
        semi = run(src, strategy="seminaive")
        assert naive.database == semi.database
        assert semi.total_firings < naive.total_firings

    def test_function_symbols(self):
        result = run(
            """
            n(z).
            n(s(X)) <- n(X), small(X).
            small(z). small(s(z)).
            """
        )
        assert facts_of(result, "n") == {"n(z)", "n(s(z))", "n(s(s(z)))"}

    def test_empty_program(self):
        result = run("")
        assert result.total_facts == 0


class TestNegation:
    def test_excl_ancestor(self):
        result = run(
            """
            parent(a, b). parent(b, c).
            person(a). person(b). person(c).
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            excl(X, Y, Z) <- anc(X, Y), person(Z), ~anc(X, Z).
            """
        )
        # a is an ancestor of b, and a is NOT an ancestor of a.
        assert "excl(a, b, a)" in facts_of(result, "excl")
        # but (a, b, c) is excluded since a IS an ancestor of c.
        assert "excl(a, b, c)" not in facts_of(result, "excl")

    def test_negation_sees_completed_lower_layer(self):
        result = run(
            """
            b(1). b(2). b(3).
            q(X) <- b(X), X < 3.
            p(X) <- b(X), ~q(X).
            """
        )
        assert facts_of(result, "p") == {"p(3)"}

    def test_inadmissible_program_rejected(self):
        with pytest.raises(NotAdmissibleError):
            run("p(X) <- b(X), ~p(X). b(1).")

    def test_negation_over_set_valued_fact(self):
        result = run(
            """
            s(1, {a}). s(2, {a, b}).
            keyset({a}).
            odd(X) <- s(X, S), ~keyset(S).
            """
        )
        assert facts_of(result, "odd") == {"odd(2)"}


class TestGroupingEvaluation:
    def test_supplier_parts(self):
        result = run(
            """
            supplies(s1, p1). supplies(s1, p2). supplies(s2, p3).
            sp(S, <P>) <- supplies(S, P).
            """
        )
        assert facts_of(result, "sp") == {
            "sp(s1, {p1, p2})",
            "sp(s2, {p3})",
        }

    def test_empty_group_derives_nothing(self):
        result = run(
            """
            item(1).
            match(X, X) <- item(X), item(X), X != X.
            g(X, <Y>) <- item(X), match(X, Y).
            """
        )
        assert facts_of(result, "g") == set()

    def test_grouping_key_by_interpreted_terms(self):
        # §3.2: classes are formed by the *interpreted* head terms.
        result = run(
            """
            d(1, a). d(-1, b). d(2, c).
            g(X * X, <Y>) <- d(X, Y).
            """
        )
        assert facts_of(result, "g") == {"g(1, {a, b})", "g(4, {c})"}

    def test_group_variable_in_key_gives_singletons(self):
        # "<X> with X also in the head groups singletons" (§2.2 note)
        result = run("b(1). b(2). g(X, <X>) <- b(X).")
        assert facts_of(result, "g") == {"g(1, {1})", "g(2, {2})"}

    def test_grouping_over_sets(self):
        result = run(
            """
            s(a, {1}). s(a, {2}). s(b, {}).
            g(X, <S>) <- s(X, S).
            """
        )
        assert facts_of(result, "g") == {
            "g(a, {{1}, {2}})",
            "g(b, {{}})",
        }

    def test_multilayer_grouping(self):
        result = run(
            """
            e(a, 1). e(a, 2). e(b, 3).
            g1(X, <Y>) <- e(X, Y).
            size(X, N) <- g1(X, S), card(S, N).
            g2(<N>) <- size(X, N).
            """
        )
        assert facts_of(result, "g2") == {"g2({1, 2})"}


class TestSetEnumeration:
    def test_book_deal(self):
        result = run(
            """
            book(b1, 30). book(b2, 40). book(b3, 50). book(b4, 90).
            deal({X, Y}) <- book(X, Px), book(Y, Py), X != Y, Px + Py < 100.
            """
        )
        assert facts_of(result, "deal") == {
            "deal({b1, b2})",
            "deal({b1, b3})",
            "deal({b2, b3})",
        }

    def test_head_set_collapses_duplicates(self):
        # same title different price: {X, Y} with X = Y gives a singleton
        result = run(
            """
            book(b1, 30). book(b1, 35).
            deal({X, Y}) <- book(X, Px), book(Y, Py), Px + Py < 100.
            """
        )
        assert facts_of(result, "deal") == {"deal({b1})"}

    def test_set_pattern_in_body(self):
        result = run(
            """
            pair({1, 2}). pair({3}).
            elem(X) <- pair({X | _}).
            """
        )
        assert facts_of(result, "elem") == {"elem(1)", "elem(2)", "elem(3)"}


class TestPartsExplosion:
    SRC = """
    p(1,2). p(1,7). p(2,3). p(2,4). p(3,5). p(3,6).
    q(4,20). q(5,10). q(6,15). q(7,200).
    part(P, <S>) <- p(P, S).
    tc({X}, C) <- q(X, C).
    tc({X}, C) <- part(X, S), tc(S, C).
    tc(S, C) <- partition(S, S1, S2), S1 != {}, S2 != {},
                tc(S1, C1), tc(S2, C2), C = C1 + C2.
    result(X, C) <- tc({X}, C).
    """

    def test_paper_costs(self):
        result = run(self.SRC)
        assert facts_of(result, "result") == {
            "result(1, 245)",
            "result(2, 45)",
            "result(3, 25)",
            "result(4, 20)",
            "result(5, 10)",
            "result(6, 15)",
            "result(7, 200)",
        }

    def test_paper_tc_tuples_present(self):
        result = run(self.SRC)
        tc = facts_of(result, "tc")
        assert "tc({3}, 25)" in tc
        assert "tc({2}, 45)" in tc
        assert "tc({1}, 245)" in tc

    def test_impure_q_footnote(self):
        # footnote 2: the derivation still holds if q also contains
        # cost tuples for some aggregate parts.
        impure = self.SRC + " q(3, 25)."
        result = run(impure)
        assert "result(1, 245)" in facts_of(result, "result")


class TestTheorems:
    def test_theorem2_layering_independence(self):
        src = """
        par(a, b). par(b, c). person(a). person(b). person(c).
        anc(X, Y) <- par(X, Y).
        anc(X, Y) <- par(X, Z), anc(Z, Y).
        lonely(X) <- person(X), ~anc(X, X).
        grouped(X, <Y>) <- anc(X, Y).
        """
        program, _ = parse_program(src)
        reference = evaluate(program)
        for layering in linear_layerings(program, limit=8):
            result = evaluate(program, layering=layering)
            assert result.database == reference.database

    def test_invalid_layering_rejected(self):
        from repro.program.stratify import Layering

        program, _ = parse_program("p(X) <- q(X), ~r(X). q(1). r(1).")
        bad = Layering([frozenset({"p", "q", "r"})])
        with pytest.raises(EvaluationError):
            evaluate(program, layering=bad)


class TestQueries:
    def test_query_answers(self, ancestor_program):
        result = run(ancestor_program)
        answers = result.answers(parse_query("? ancestor(a, X)."))
        assert [b["X"] for b in answers] == [Const("b"), Const("c"), Const("d")]

    def test_query_no_answers(self, ancestor_program):
        result = run(ancestor_program)
        assert result.answers(parse_query("? ancestor(d, X).")) == []

    def test_query_with_set_constant(self):
        result = run("s(a, {1, 2}). s(b, {3}).")
        answers = result.answers(parse_query("? s(X, {1, 2})."))
        assert [b["X"] for b in answers] == [Const("a")]

    def test_answer_atoms_sorted(self, ancestor_program):
        result = run(ancestor_program)
        atoms = result.answer_atoms(parse_query("? ancestor(X, Y)."))
        assert len(atoms) == 6
        assert atoms == sorted(atoms, key=lambda a: a.sort_key())
