"""Tests for delimited-file data loading (repro.data)."""

import pytest

from repro import LDL
from repro.data import dump_delimited, load_delimited, parse_cell
from repro.errors import EvaluationError
from repro.parser import parse_atom, parse_term
from repro.terms.term import Const, SetVal


class TestParseCell:
    def test_integers(self):
        assert parse_cell("42") == Const(42)
        assert parse_cell("-3") == Const(-3)

    def test_floats(self):
        assert parse_cell("2.5") == Const(2.5)

    def test_symbols(self):
        assert parse_cell("john") == Const("john")
        assert parse_cell("New York") == Const("New York")

    def test_whitespace_trimmed(self):
        assert parse_cell("  bob  ") == Const("bob")

    def test_sets(self):
        assert parse_cell("{1; 2; 3}") == parse_term("{1, 2, 3}")
        assert parse_cell("{}") == SetVal()
        assert parse_cell("{a; b}") == parse_term("{a, b}")

    def test_empty_cell_rejected(self):
        with pytest.raises(EvaluationError):
            parse_cell("")


class TestLoadDelimited:
    def test_csv(self, tmp_path):
        path = tmp_path / "parent.csv"
        path.write_text("ann,bob\nbob,carl\n")
        atoms = load_delimited(path, "parent")
        assert atoms == [
            parse_atom("parent(ann, bob)"),
            parse_atom("parent(bob, carl)"),
        ]

    def test_tsv_by_extension(self, tmp_path):
        path = tmp_path / "edge.tsv"
        path.write_text("1\t2\n2\t3\n")
        atoms = load_delimited(path, "edge")
        assert atoms == [parse_atom("edge(1, 2)"), parse_atom("edge(2, 3)")]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("# header comment\na,1\n\n  ,\nb,2\n")
        atoms = load_delimited(path, "d")
        assert len(atoms) == 2

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,1\nb\n")
        with pytest.raises(EvaluationError):
            load_delimited(path, "bad")

    def test_set_cells(self, tmp_path):
        path = tmp_path / "stock.csv"
        path.write_text("east,{bolts; nuts}\nnorth,{}\n")
        atoms = load_delimited(path, "stock")
        assert atoms[0] == parse_atom("stock(east, {bolts, nuts})")
        assert atoms[1] == parse_atom("stock(north, {})")

    def test_end_to_end_with_session(self, tmp_path):
        path = tmp_path / "parent.csv"
        path.write_text("ann,bob\nbob,carl\n")
        db = LDL(
            """
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            """
        ).add_atoms(load_delimited(path, "parent"))
        assert db.query("? anc(ann, X).") == [{"X": "bob"}, {"X": "carl"}]


class TestDumpDelimited:
    def test_roundtrip(self, tmp_path):
        facts = [
            parse_atom("stock(east, {bolts, nuts})"),
            parse_atom("stock(west, {})"),
            parse_atom("count(east, 2)"),
        ]
        path = tmp_path / "out.csv"
        count = dump_delimited(facts[:2], path)
        assert count == 2
        reloaded = load_delimited(path, "stock")
        assert reloaded == facts[:2]

    def test_cli_edb_flag(self, tmp_path):
        import io

        from repro.cli import run

        data = tmp_path / "parent.csv"
        data.write_text("ann,bob\nbob,carl\n")
        rules = tmp_path / "rules.ldl"
        rules.write_text(
            """
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            ? anc(ann, X).
            """
        )
        out = io.StringIO()
        code = run([str(rules), "--edb", f"parent={data}"], out=out)
        assert code == 0
        assert "X = 'carl'" in out.getvalue()

    def test_cli_explain_flag(self, tmp_path):
        import io

        from repro.cli import run

        rules = tmp_path / "rules.ldl"
        rules.write_text(
            """
            parent(ann, bob). parent(bob, carl).
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            """
        )
        out = io.StringIO()
        code = run([str(rules), "--explain", "anc(ann, carl)"], out=out)
        assert code == 0
        assert "parent(bob, carl)" in out.getvalue()


class TestCliSave:
    def test_save_computed_extension(self, tmp_path):
        import io

        from repro.cli import run

        rules = tmp_path / "rules.ldl"
        rules.write_text(
            """
            parent(ann, bob). parent(bob, carl).
            anc(X, Y) <- parent(X, Y).
            anc(X, Y) <- parent(X, Z), anc(Z, Y).
            """
        )
        out_file = tmp_path / "anc.csv"
        out = io.StringIO()
        code = run([str(rules), "--save", f"anc={out_file}"], out=out)
        assert code == 0
        assert "wrote 3 anc rows" in out.getvalue()
        reloaded = load_delimited(out_file, "anc")
        assert parse_atom("anc(ann, carl)") in reloaded

    def test_pipeline_roundtrip(self, tmp_path):
        # load CSV -> derive -> save CSV -> load again -> same extension
        import io

        from repro.cli import run

        data = tmp_path / "edges.csv"
        data.write_text("1,2\n2,3\n3,4\n")
        rules = tmp_path / "tc.ldl"
        rules.write_text(
            "t(X, Y) <- e(X, Y). t(X, Y) <- e(X, Z), t(Z, Y)."
        )
        saved = tmp_path / "t.csv"
        out = io.StringIO()
        code = run(
            [str(rules), "--edb", f"e={data}", "--save", f"t={saved}"],
            out=out,
        )
        assert code == 0
        assert len(load_delimited(saved, "t")) == 6
