"""Tests for the HTTP/JSON gateway (repro.server.gateway)."""

import http.client
import json

from repro import LDL
from repro.api import to_term
from repro.server.cache import AnswerCache
from repro.server.gateway import HttpGateway
from repro.storage.codec import encode_term
from tests.test_server import ServerThread

ANCESTRY = """
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
"""


class GatewayThread(ServerThread):
    """A ServerThread that also runs an HttpGateway on the same loop."""

    def __init__(self, session, gateway_kwargs=None, **kwargs):
        super().__init__(session, **kwargs)
        self._gateway_kwargs = gateway_kwargs or {}
        self.gateway = None

    async def _main(self):
        await self.server.start()
        self.gateway = HttpGateway(self.server, **self._gateway_kwargs)
        await self.gateway.start()
        self._started.set()
        try:
            await self.server.serve(handle_signals=False)
        finally:
            await self.gateway.stop()

    @property
    def http_port(self):
        return self.gateway.port

    def connection(self):
        return http.client.HTTPConnection("127.0.0.1", self.http_port, timeout=10)

    def request(self, method, path, body=None, conn=None):
        """One HTTP exchange; returns (status, decoded-json, connection)."""
        c = conn or self.connection()
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        c.request(method, path, payload, headers)
        response = c.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else None, c


def ancestry_session():
    db = LDL(ANCESTRY)
    db.facts("par", [("ann", "bob"), ("bob", "cal")])
    return db


def rows(*value_rows):
    return [[encode_term(to_term(v)) for v in row] for row in value_rows]


class TestRoutesAndOps:
    def test_ops_over_http(self):
        with GatewayThread(ancestry_session(), cache=None) as gt:
            status, body, conn = gt.request("GET", "/v1/ping")
            assert (status, body["ok"]) == (200, True)

            # keep-alive: same connection serves the whole session
            status, body, _ = gt.request("GET", "/", conn=conn)
            assert status == 200
            assert "query" in body["ops"] and "ping" in body["get"]

            status, body, _ = gt.request(
                "POST", "/v1/query", {"q": "? anc(ann, X)."}, conn=conn
            )
            assert status == 200 and body["count"] == 2

            status, body, _ = gt.request(
                "POST",
                "/v1/add_facts",
                {"pred": "par", "rows": rows(("cal", "dot"))},
                conn=conn,
            )
            assert status == 200 and body["count"] == 1

            status, body, _ = gt.request(
                "POST",
                "/v1/query",
                {"q": "? anc(ann, X).", "strategy": "magic"},
                conn=conn,
            )
            assert status == 200 and body["count"] == 3

            status, body, _ = gt.request(
                "POST",
                "/v1/remove_facts",
                {"pred": "par", "rows": rows(("cal", "dot"))},
                conn=conn,
            )
            assert status == 200 and body["count"] == 1

            status, body, _ = gt.request(
                "POST", "/v1/explain", {"fact": "anc(ann, cal)."}, conn=conn
            )
            assert status == 200 and body["derivation"]

            status, body, _ = gt.request("GET", "/v1/stats", conn=conn)
            assert status == 200
            assert body["stats"]["server"]["requests_total"] >= 6

    def test_http_errors(self):
        with GatewayThread(ancestry_session(), cache=None) as gt:
            status, body, conn = gt.request("GET", "/v1/nope")
            assert status == 404 and body["ok"] is False

            status, body, _ = gt.request("GET", "/v1/query", conn=conn)
            assert status == 405 and "POST" in body["error"]

            status, body, _ = gt.request("POST", "/v1/stats", body={}, conn=conn)
            assert status == 200  # GET ops still accept POST bodies

            status, body, _ = gt.request("DELETE", "/v1/query", body={}, conn=conn)
            assert status == 405

            # a failed op surfaces the protocol error object with a status
            status, body, _ = gt.request(
                "POST", "/v1/query", {"q": "not a query"}, conn=conn
            )
            assert status == 500 and body["ok"] is False and body["etype"]

            # POST with no Content-Length at all
            raw = gt.connection()
            raw.putrequest("POST", "/v1/ping", skip_accept_encoding=True)
            raw.endheaders()
            response = raw.getresponse()
            assert response.status == 411

    def test_malformed_body_is_400_and_closes(self):
        with GatewayThread(ancestry_session(), cache=None) as gt:
            conn = gt.connection()
            conn.request(
                "POST",
                "/v1/query",
                "{not json",
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            json.loads(response.read())


class TestLimits:
    def test_connection_limit_rejects_with_503(self):
        with GatewayThread(
            ancestry_session(), cache=None, gateway_kwargs={"max_connections": 1}
        ) as gt:
            status, _, first = gt.request("GET", "/v1/ping")
            assert status == 200  # holds the only slot (keep-alive)
            status, body, second = gt.request("GET", "/v1/ping")
            assert status == 503
            assert body["etype"] == "ServerError"
            second.close()
            # the admitted connection keeps working
            status, _, _ = gt.request("GET", "/v1/ping", conn=first)
            assert status == 200
            first.close()
            stats = gt.request("GET", "/v1/stats")[1]["stats"]
            assert stats["server"]["rejections"]["connections"] >= 1

    def test_inflight_limit_rejects_before_dispatch(self):
        with GatewayThread(
            ancestry_session(), cache=None, gateway_kwargs={"max_inflight": 0}
        ) as gt:
            status, body, conn = gt.request("GET", "/v1/ping")
            assert status == 503
            assert "in-flight" in body["error"]
            # the connection survives an admission rejection
            status, body, _ = gt.request("GET", "/", conn=conn)
            assert status == 200

    def test_oversized_body_is_413(self):
        with GatewayThread(
            ancestry_session(), cache=None, gateway_kwargs={"max_body_bytes": 64}
        ) as gt:
            big = {"q": "? anc(ann, X)." + "x" * 200}
            status, body, _ = gt.request("POST", "/v1/query", big)
            assert status == 413
            assert "64-byte limit" in body["error"]
            stats = gt.request("GET", "/v1/stats")[1]["stats"]
            assert stats["server"]["rejections"]["body"] >= 1


class TestSharedCore:
    def test_http_and_tcp_share_session_cache_and_metrics(self):
        cache = AnswerCache()
        with GatewayThread(ancestry_session(), cache=cache) as gt:
            ask = {"q": "? anc(ann, X)."}
            assert gt.request("POST", "/v1/query", ask)[1]["cache"] == "miss"
            assert gt.request("POST", "/v1/query", ask)[1]["cache"] == "hit"
            # a write over the line protocol invalidates the HTTP hit
            with gt.client() as tcp:
                tcp.add_facts("par", [("cal", "dot")])
                response = gt.request("POST", "/v1/query", ask)[1]
                assert response["cache"] == "miss"
                assert response["count"] == 3
                # ...and the refilled entry serves TCP clients too
                assert tcp.call("query", **ask)["cache"] == "hit"
            stats = gt.request("GET", "/v1/stats")[1]["stats"]
            assert stats["answer_cache"]["hits"] >= 2
            assert stats["server"]["cache"]["invalidation_events"] >= 1
