"""Tests for the fixpoint operators (repro.engine.fixpoint)."""

from repro.engine.database import Database
from repro.engine.fixpoint import naive_fixpoint, seminaive_fixpoint
from repro.parser import parse_atom, parse_rules


def chain_db(n):
    db = Database()
    for i in range(n):
        db.add(parse_atom(f"e({i}, {i + 1})"))
    return db


TC = parse_rules(
    """
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
    """
).proper_rules()


class TestNaive:
    def test_reaches_fixpoint(self):
        db = chain_db(6)
        stats = naive_fixpoint(db, TC)
        assert db.count("t") == 21  # 6*7/2

    def test_iteration_count_tracks_depth(self):
        db = chain_db(6)
        stats = naive_fixpoint(db, TC)
        # naive iterates once per new "distance" plus the final no-change pass
        assert stats.iterations == 7

    def test_idempotent(self):
        db = chain_db(4)
        naive_fixpoint(db, TC)
        before = db.count()
        stats = naive_fixpoint(db, TC)
        assert db.count() == before
        assert stats.facts_derived == 0

    def test_no_rules(self):
        db = chain_db(3)
        stats = naive_fixpoint(db, [])
        assert stats.facts_derived == 0


class TestSemiNaive:
    def test_same_fixpoint_as_naive(self):
        db1 = chain_db(8)
        db2 = chain_db(8)
        naive_fixpoint(db1, TC)
        seminaive_fixpoint(db2, TC)
        assert db1 == db2

    def test_fires_fewer_rules(self):
        db1 = chain_db(12)
        db2 = chain_db(12)
        naive_stats = naive_fixpoint(db1, TC)
        semi_stats = seminaive_fixpoint(db2, TC)
        assert semi_stats.rule_firings < naive_stats.rule_firings

    def test_nonrecursive_rules_single_round(self):
        rules = parse_rules("p(X) <- e(X, _).").proper_rules()
        db = chain_db(5)
        stats = seminaive_fixpoint(db, rules)
        assert db.count("p") == 5
        # round 0 plus the empty delta round
        assert stats.iterations <= 2

    def test_mutual_recursion(self):
        rules = parse_rules(
            """
            even_dist(X, Y) <- e(X, Z), odd_dist(Z, Y).
            odd_dist(X, Y) <- e(X, Y).
            odd_dist(X, Y) <- e(X, Z), even_dist(Z, Y).
            """
        ).proper_rules()
        db1 = chain_db(7)
        db2 = chain_db(7)
        naive_fixpoint(db1, rules)
        seminaive_fixpoint(db2, rules)
        assert db1 == db2
        # distance 2 pairs are even
        assert (parse_atom("even_dist(0, 2)")) in db2

    def test_stats_merge(self):
        from repro.engine.fixpoint import FixpointStats

        a = FixpointStats(iterations=1, rule_firings=2, facts_derived=3)
        b = FixpointStats(iterations=4, rule_firings=5, facts_derived=6)
        a.merge(b)
        assert (a.iterations, a.rule_firings, a.facts_derived) == (5, 7, 9)


class TestAttribution:
    """Derivation attribution and firing counts agree across strategies."""

    def test_rule_firings_count_applications(self):
        # one non-recursive rule: naive runs it once per iteration
        # (deriving round + no-change round), so exactly 2 applications
        # regardless of how many tuples each application produced.
        rules = parse_rules("p(X) <- e(X, _).").proper_rules()
        db = chain_db(5)
        stats = naive_fixpoint(db, rules)
        assert stats.rule_firings == 2
        assert stats.facts_derived == 5

    def test_both_strategies_attribute_the_deriving_rule(self):
        from repro.engine.context import EvalContext
        from repro.observe import TraceRecorder

        attributions = {}
        for strategy in (naive_fixpoint, seminaive_fixpoint):
            recorder = TraceRecorder()
            db = chain_db(5)
            strategy(db, TC, context=EvalContext(db, hooks=recorder))
            events = [
                e for e in recorder.events if e.kind == "fact_derived"
            ]
            assert events and all(
                e.payload["rule"] is not None for e in events
            )
            attributions[strategy.__name__] = {
                (e.payload["fact"], e.payload["rule"]) for e in events
            }
        # same facts attributed to the same rules under both strategies
        assert (
            attributions["naive_fixpoint"]
            == attributions["seminaive_fixpoint"]
        )


class TestSizedPlanner:
    def test_same_fixpoint_as_static(self):
        from repro.engine import evaluate
        from repro.parser import parse_program

        src = """
        tiny(0). tiny(1).
        out(Y) <- big(X, Y), tiny(X).
        """
        program, _ = parse_program(src)
        edb = [parse_atom(f"big({i % 7}, {i})") for i in range(200)]
        static = evaluate(program, edb=edb, planner="static")
        sized = evaluate(program, edb=edb, planner="sized")
        assert static.database == sized.database

    def test_sized_order_puts_small_relation_first(self):
        from repro.engine.solve import order_body
        from repro.parser import parse_rule

        rule = parse_rule("out(Y) <- big(X, Y), tiny(X).")
        static = order_body(rule.body)
        sized = order_body(rule.body, sizes={"big": 10_000, "tiny": 3})
        assert static == (0, 1)
        assert sized == (1, 0)

    def test_sized_respects_bound_args(self):
        from repro.engine.solve import order_body
        from repro.parser import parse_rule

        # with X bound, probing big by index may beat scanning tiny
        rule = parse_rule("out(X, Y) <- big(X, Y), tiny(Z).")
        sized = order_body(
            rule.body, initially_bound=frozenset({"X"}),
            sizes={"big": 100, "tiny": 50},
        )
        assert sized == (0, 1)  # 100/4 < 50
