"""Property-based robustness tests for the parser and printer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parser import parse_program, parse_rules
from repro.terms.pretty import format_program, format_rule
from repro.workloads.generator import random_program


@given(st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_generated_programs_roundtrip(seed):
    program = random_program(seed).program
    text = format_program(program)
    reparsed = parse_rules(text)
    assert reparsed == program


whitespace = st.sampled_from([" ", "\t", "\n", "  ", "\n\n", " % noise\n"])


@given(st.integers(0, 50), st.lists(whitespace, min_size=3, max_size=8))
@settings(max_examples=30, deadline=None)
def test_whitespace_and_comments_are_insignificant(seed, paddings):
    program = random_program(seed).program
    text = format_program(program)
    # inject padding after every rule terminator
    chunks = text.split(".\n")
    mutated = ""
    for i, chunk in enumerate(chunks):
        mutated += chunk
        if i < len(chunks) - 1:
            mutated += "." + paddings[i % len(paddings)]
    reparsed = parse_rules(mutated)
    assert reparsed == program


@given(st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_rule_level_roundtrip(seed):
    program = random_program(seed).program
    for rule in program:
        text = format_rule(rule)
        [reparsed] = parse_rules(text).rules
        assert reparsed == rule


@given(st.text(max_size=40))
@settings(max_examples=120, deadline=None)
def test_arbitrary_text_never_crashes_unexpectedly(text):
    # any input must either parse or raise an LDL error with position
    # info — never an arbitrary exception.
    from repro.errors import LexerError, ParseError

    try:
        parse_program(text)
    except (LexerError, ParseError) as exc:
        assert exc.line >= 0
    # (ValueError/TypeError/... would fail the test)


@given(st.integers(0, 40))
@settings(max_examples=20, deadline=None)
def test_magic_rewritten_programs_roundtrip(seed):
    # adorned/magic predicate names (p__bf, m_p__bf, sup_*) must survive
    # the printer/parser cycle like any other program.
    from repro.magic import magic_rewrite, supplementary_rewrite
    from repro.program.rule import Atom, Query
    from repro.terms.term import Const, Var

    generated = random_program(seed)
    idb = sorted(generated.program.idb_predicates())
    if not idb:
        return
    query = Query(Atom(idb[0], (Const(0), Var("Y"))))
    for rewrite in (magic_rewrite, supplementary_rewrite):
        rewritten = rewrite(generated.program, query).all_rules()
        assert parse_rules(format_program(rewritten)) == rewritten
