"""Unit tests for model checking, minimality, and model enumeration."""

import pytest

from repro.errors import EvaluationError
from repro.parser import parse_atom, parse_rules
from repro.semantics import (
    all_models,
    enumerate_models,
    first_violation,
    generate_candidates,
    has_model,
    improves_on,
    is_minimal_among,
    is_model,
    minimal_models,
    submodel,
    violations,
)
from repro.terms.term import Const


def atoms(*sources):
    return frozenset(parse_atom(s) for s in sources)


class TestIsModel:
    def test_empty_program_any_interpretation(self):
        program = parse_rules("")
        assert is_model(program, atoms("junk(1)"))

    def test_fact_must_be_present(self):
        program = parse_rules("p(1).")
        assert not is_model(program, frozenset())
        assert is_model(program, atoms("p(1)"))

    def test_simple_rule(self):
        program = parse_rules("q(X) <- p(X).")
        assert is_model(program, atoms("p(1)", "q(1)"))
        assert not is_model(program, atoms("p(1)"))

    def test_negation(self):
        program = parse_rules("q(X) <- p(X), ~r(X).")
        assert not is_model(program, atoms("p(1)"))
        assert is_model(program, atoms("p(1)", "r(1)"))
        assert is_model(program, atoms("p(1)", "q(1)"))

    def test_builtin_in_body(self):
        program = parse_rules("q(X) <- p(X), X < 2.")
        assert not is_model(program, atoms("p(1)"))
        assert is_model(program, atoms("p(3)"))

    def test_grouping_rule_requires_grouped_fact(self):
        program = parse_rules("g(<X>) <- q(X).")
        assert is_model(program, atoms("q(1)", "q(2)", "g({1, 2})"))
        # a partial group does not satisfy the formula
        assert not is_model(program, atoms("q(1)", "q(2)", "g({1})"))

    def test_grouping_rule_with_empty_body_trivially_true(self):
        program = parse_rules("g(<X>) <- q(X).")
        assert is_model(program, frozenset())

    def test_extra_facts_allowed(self):
        # models need not be tight: g({9}) extra is fine
        program = parse_rules("g(<X>) <- q(X).")
        assert is_model(program, atoms("q(1)", "g({1})", "g({9})"))

    def test_violation_witness(self):
        program = parse_rules("q(X) <- p(X).")
        violation = first_violation(program, atoms("p(1)"))
        assert violation is not None
        assert violation.missing_head == parse_atom("q(1)")

    def test_violations_one_per_rule(self):
        program = parse_rules("q(X) <- p(X). r(X) <- p(X).")
        found = list(violations(program, atoms("p(1)")))
        assert len(found) == 2


class TestSubmodelAndImproves:
    def test_submodel_via_domination(self):
        small = atoms("p({1})")
        large = atoms("p({1, 2})", "q(1)")
        assert submodel(small, large)
        assert not submodel(large, small)

    def test_improves_on_strict_subset(self):
        assert improves_on(atoms("p(1)"), atoms("p(1)", "q(1)"))

    def test_improves_on_requires_difference(self):
        m = atoms("p(1)")
        assert not improves_on(m, m)

    def test_is_minimal_among(self):
        m1 = atoms("q(1)", "q(2)", "p({1, 2})")
        m2 = atoms("q(1)", "p({1})")
        assert is_minimal_among(m2, [m1, m2])
        assert not is_minimal_among(m1, [m1, m2])

    def test_minimal_models_filter(self):
        m1 = atoms("q(1)", "q(2)", "p({1, 2})")
        m2 = atoms("q(1)", "p({1})")
        assert minimal_models([m1, m2]) == [m2]


class TestEnumeration:
    def test_enumerates_all_models(self):
        program = parse_rules("q(X) <- p(X). p(1).")
        candidates = [parse_atom("q(1)"), parse_atom("q(2)")]
        models = all_models(program, candidates)
        # q(1) forced; q(2) optional
        assert frozenset(atoms("p(1)", "q(1)")) in models
        assert frozenset(atoms("p(1)", "q(1)", "q(2)")) in models
        assert len(models) == 2

    def test_smallest_first(self):
        program = parse_rules("p(1).")
        candidates = [parse_atom("q(1)"), parse_atom("q(2)")]
        models = all_models(program, candidates)
        assert models[0] == atoms("p(1)")

    def test_cap_enforced(self):
        program = parse_rules("p(1).")
        candidates = [parse_atom(f"q({i})") for i in range(30)]
        with pytest.raises(EvaluationError):
            list(enumerate_models(program, candidates))

    def test_has_model(self):
        program = parse_rules("q(X) <- p(X). p(1).")
        assert has_model(program, [parse_atom("q(1)")])
        assert not has_model(program, [parse_atom("q(2)")])


class TestGenerateCandidates:
    def test_covers_program_predicates(self):
        program = parse_rules("q(X) <- p(X).")
        candidates = generate_candidates(
            program, [Const(1)], max_set_size=0, max_set_depth=0
        )
        preds = {a.pred for a in candidates}
        assert preds == {"p", "q"}

    def test_set_closure(self):
        program = parse_rules("p(1).")
        candidates = generate_candidates(
            program, [Const(1)], max_set_size=1, max_set_depth=1
        )
        assert parse_atom("p({1})") in candidates
        assert parse_atom("p({})") in candidates

    def test_explicit_predicates(self):
        program = parse_rules("")
        candidates = generate_candidates(
            program, [Const(1)], predicates=[("r", 2)],
            max_set_size=0, max_set_depth=0,
        )
        assert candidates == [parse_atom("r(1, 1)")]
