"""Tests for well-formedness and safety checks (paper §2.1, §7)."""

import pytest

from repro.errors import SafetyError, WellFormednessError
from repro.parser import parse_rule, parse_rules
from repro.program.wellformed import (
    check_program,
    check_rule_safe,
    check_rule_wellformed,
    derivable_variables,
    head_group_variable,
)


class TestGroupingRestrictions:
    def test_plain_grouping_rule_ok(self):
        check_rule_wellformed(parse_rule("part(P, <S>) <- p(P, S)."))

    def test_w1_no_group_in_body(self):
        rule = parse_rule("p(X) <- q(<X>).")
        with pytest.raises(WellFormednessError):
            check_rule_wellformed(rule)

    def test_w2_single_group_occurrence(self):
        rule = parse_rule("p(<X>, <Y>) <- q(X, Y).")
        with pytest.raises(WellFormednessError):
            check_rule_wellformed(rule)

    def test_w2_group_must_be_direct_argument(self):
        rule = parse_rule("p(f(<X>)) <- q(X).")
        with pytest.raises(WellFormednessError):
            check_rule_wellformed(rule)

    def test_w3_strict_mode_rejects_negation_in_grouping_body(self):
        rule = parse_rule("p(<X>) <- q(X), ~r(X).")
        with pytest.raises(WellFormednessError):
            check_rule_wellformed(rule, strict_w3=True)

    def test_w3_default_allows_negation_in_grouping_body(self):
        # the paper's own Section 6 running example needs this
        check_rule_wellformed(parse_rule("p(<X>) <- q(X), ~r(X)."))

    def test_ldl15_complex_group_rejected_in_base(self):
        rule = parse_rule("p(X, <g(Y)>) <- q(X, Y).")
        with pytest.raises(WellFormednessError):
            check_rule_wellformed(rule)

    def test_ldl15_flag_accepts_everything(self):
        check_rule_wellformed(parse_rule("p(X) <- q(<X>)."), allow_ldl15=True)
        check_rule_wellformed(
            parse_rule("p(X, <g(Y)>) <- q(X, Y)."), allow_ldl15=True
        )

    def test_head_group_variable(self):
        assert head_group_variable(parse_rule("p(X, <S>) <- q(X, S).")) == "S"
        assert head_group_variable(parse_rule("p(X) <- q(X).")) is None


class TestSafety:
    def test_safe_rule(self):
        check_rule_safe(parse_rule("p(X) <- q(X)."))

    def test_unbound_head_variable(self):
        with pytest.raises(SafetyError):
            check_rule_safe(parse_rule("p(X, Y) <- q(X)."))

    def test_fact_with_variable_unsafe(self):
        # Section 7: "facts may not have variables as arguments".
        with pytest.raises(SafetyError):
            check_rule_safe(parse_rule("p(X)."))

    def test_unbound_negative_literal(self):
        with pytest.raises(SafetyError):
            check_rule_safe(parse_rule("p(X) <- q(X), ~r(X, Z)."))

    def test_builtin_can_bind_head_variable(self):
        # C is produced by '=' from bound C1, C2.
        check_rule_safe(parse_rule("p(X, C) <- q(X, C1, C2), C = C1 + C2."))

    def test_member_binds_element(self):
        check_rule_safe(parse_rule("p(X) <- s(S), member(X, S)."))

    def test_partition_binds_parts(self):
        check_rule_safe(parse_rule("p(A, B) <- s(S), partition(S, A, B)."))

    def test_chain_of_builtins(self):
        check_rule_safe(
            parse_rule("p(N) <- s(S), card(S, C), N = C + 1.")
        )

    def test_comparison_binds_nothing(self):
        with pytest.raises(SafetyError):
            check_rule_safe(parse_rule("p(X) <- q(Y), X < Y."))

    def test_strict_mode_rejects_builtin_bindings(self):
        rule = parse_rule("p(X, C) <- q(X, C1, C2), C = C1 + C2.")
        with pytest.raises(SafetyError):
            check_rule_safe(rule, strict=True)

    def test_strict_mode_accepts_plain_rules(self):
        check_rule_safe(parse_rule("p(X) <- q(X), ~r(X)."), strict=True)

    def test_derivable_variables(self):
        rule = parse_rule("p(N) <- s(S), card(S, N).")
        assert derivable_variables(rule) == {"S", "N"}


class TestProgramChecks:
    def test_builtin_redefinition_rejected(self):
        program = parse_rules("member(X, S) <- weird(X, S).")
        with pytest.raises(WellFormednessError):
            check_program(program)

    def test_builtin_fact_rejected(self):
        with pytest.raises(WellFormednessError):
            check_program(parse_rules("union({1}, {2}, {1, 2})."))

    def test_valid_program_passes(self):
        check_program(
            parse_rules(
                """
                parent(a, b).
                ancestor(X, Y) <- parent(X, Y).
                ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
                part(P, <S>) <- parent(P, S).
                """
            )
        )
