"""Shared pytest fixtures for the LDL1 test suite."""

import pytest


@pytest.fixture
def ancestor_program() -> str:
    return """
    parent(a, b). parent(b, c). parent(c, d).
    ancestor(X, Y) <- parent(X, Y).
    ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
    """
