"""Property test: well-founded win-move equals backward induction.

The win-move game has a classical game-theoretic solution computable
without logic programming: positions with no moves LOSE; a position
WINS iff some move reaches a LOSing position; iterate to fixpoint;
everything unresolved is a DRAW.  The well-founded model of
``win(X) <- move(X, Y), ~win(Y)`` must agree exactly: WIN = true,
LOSE = false, DRAW = undefined.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parser import parse_program
from repro.program.rule import Atom
from repro.semantics.wellfounded import wellfounded
from repro.terms.term import Const

WIN_RULE = "win(X) <- move(X, Y), ~win(Y)."

edges = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=1,
    max_size=16,
    unique=True,
)


def backward_induction(pairs):
    """Classical WIN/LOSE/DRAW labelling of a finite game graph."""
    nodes = {a for a, _ in pairs} | {b for _, b in pairs}
    moves = {n: set() for n in nodes}
    for a, b in pairs:
        moves[a].add(b)
    label = {}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n in label:
                continue
            succ = moves[n]
            if any(label.get(s) == "lose" for s in succ):
                label[n] = "win"
                changed = True
            elif all(label.get(s) == "win" for s in succ):
                # includes the no-moves case (vacuously all win)
                label[n] = "lose"
                changed = True
    for n in nodes:
        label.setdefault(n, "draw")
    return label


@given(edges)
@settings(max_examples=60, deadline=None)
def test_wellfounded_matches_backward_induction(pairs):
    facts = " ".join(f"move({a}, {b})." for a, b in pairs)
    program, _ = parse_program(facts + WIN_RULE)
    model = wellfounded(program)
    expected = backward_induction(pairs)
    for node, verdict in expected.items():
        fact = Atom("win", (Const(node),))
        wf = model.value_of(fact)
        if verdict == "win":
            assert wf == "true", node
        elif verdict == "lose":
            assert wf == "false", node
        else:
            assert wf == "undefined", node


@given(edges)
@settings(max_examples=30, deadline=None)
def test_wellfounded_true_subset_of_over(pairs):
    facts = " ".join(f"move({a}, {b})." for a, b in pairs)
    program, _ = parse_program(facts + WIN_RULE)
    model = wellfounded(program)
    # structural invariants of the three-valued model
    assert not (model.true & model.undefined)
    for fact in model.undefined:
        assert fact.pred == "win"  # move facts are never undefined
